//! Equilibrium sensitivity analysis — the analytic side of the paper's
//! "uncertainty" future work.
//!
//! If the processing rates `μ_i` are only estimates, how much do the
//! equilibrium response times move when an estimate is off? This module
//! computes finite-difference derivatives of the Nash-equilibrium
//! quantities with respect to each computer's rate, warm-starting every
//! perturbed re-solve from the base equilibrium (see
//! [`crate::dynamics`]), which makes the whole Jacobian affordable.

use crate::dynamics::remap_profile;
use crate::error::GameError;
use crate::metrics::evaluate_profile;
use crate::model::SystemModel;
use crate::nash::{Initialization, NashSolver};

/// Finite-difference sensitivities of the Nash equilibrium.
#[derive(Debug, Clone)]
pub struct SensitivityReport {
    /// `d D_j* / d μ_i` — per-user equilibrium response-time derivative
    /// with respect to each computer's rate (rows: users, cols:
    /// computers).
    pub user_time_by_rate: Vec<Vec<f64>>,
    /// `d D* / d μ_i` — overall equilibrium response-time derivative.
    pub overall_by_rate: Vec<f64>,
    /// The relative perturbation used.
    pub relative_step: f64,
}

impl SensitivityReport {
    /// The computer whose rate improvement helps the *system* most
    /// (most negative derivative).
    pub fn most_valuable_computer(&self) -> usize {
        self.overall_by_rate
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite derivatives"))
            .map(|(i, _)| i)
            .expect("non-empty system")
    }
}

/// Computes the equilibrium sensitivity Jacobian by central differences
/// with relative step `relative_step` (e.g. `1e-3`).
///
/// # Errors
///
/// Propagates solver failures; [`GameError::InvalidRate`] for a
/// non-positive step.
pub fn equilibrium_sensitivity(
    model: &SystemModel,
    tolerance: f64,
    relative_step: f64,
) -> Result<SensitivityReport, GameError> {
    if !relative_step.is_finite() || relative_step <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "relative_step",
            value: relative_step,
        });
    }
    let base = NashSolver::new(Initialization::Proportional)
        .tolerance(tolerance)
        .max_iterations(5000)
        .solve(model)?;
    let base_profile = base.into_profile();

    let m = model.num_users();
    let n = model.num_computers();
    let mut user_time_by_rate = vec![vec![0.0; n]; m];
    let mut overall_by_rate = vec![0.0; n];

    for i in 0..n {
        let mu_i = model.computer_rate(i);
        let h = relative_step * mu_i;
        let solve_at = |mu_value: f64| -> Result<(Vec<f64>, f64), GameError> {
            let mut rates = model.computer_rates().to_vec();
            rates[i] = mu_value;
            let perturbed = SystemModel::new(rates, model.user_rates().to_vec())?;
            let warm = remap_profile(&base_profile, &perturbed)?;
            let out = NashSolver::new(Initialization::Custom(warm))
                .tolerance(tolerance)
                .max_iterations(5000)
                .solve(&perturbed)?;
            let metrics = evaluate_profile(&perturbed, out.profile())?;
            Ok((metrics.user_times, metrics.overall_time))
        };
        let (up_users, up_overall) = solve_at(mu_i + h)?;
        let (dn_users, dn_overall) = solve_at(mu_i - h)?;
        for j in 0..m {
            user_time_by_rate[j][i] = (up_users[j] - dn_users[j]) / (2.0 * h);
        }
        overall_by_rate[i] = (up_overall - dn_overall) / (2.0 * h);
    }

    Ok(SensitivityReport {
        user_time_by_rate,
        overall_by_rate,
        relative_step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_step() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![9.0]).unwrap();
        assert!(equilibrium_sensitivity(&model, 1e-8, 0.0).is_err());
        assert!(equilibrium_sensitivity(&model, 1e-8, -0.1).is_err());
    }

    #[test]
    fn faster_computers_never_hurt_the_system() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let report = equilibrium_sensitivity(&model, 1e-9, 1e-3).unwrap();
        for (i, &d) in report.overall_by_rate.iter().enumerate() {
            assert!(
                d <= 1e-6,
                "raising mu_{i} worsens the equilibrium?! dD/dmu = {d}"
            );
        }
        assert_eq!(report.user_time_by_rate.len(), 10);
        assert_eq!(report.user_time_by_rate[0].len(), 16);
    }

    #[test]
    fn unused_computers_have_negligible_sensitivity() {
        // At 10% load the slow computers carry no equilibrium flow; a
        // marginal rate change there must be ~irrelevant.
        let model = SystemModel::table1_system(0.1).unwrap();
        let report = equilibrium_sensitivity(&model, 1e-10, 1e-3).unwrap();
        let scale = report
            .overall_by_rate
            .iter()
            .map(|d| d.abs())
            .fold(0.0, f64::max);
        for (i, &mu) in model.computer_rates().iter().enumerate() {
            if mu == 10.0 {
                assert!(
                    report.overall_by_rate[i].abs() < 0.05 * scale.max(1e-12),
                    "idle computer {i} has sensitivity {}",
                    report.overall_by_rate[i]
                );
            }
        }
    }

    #[test]
    fn matches_closed_form_for_a_single_queue() {
        // One computer, one user: D* = 1/(mu - phi), dD/dmu = -1/(mu-phi)^2.
        let model = SystemModel::new(vec![10.0], vec![6.0]).unwrap();
        let report = equilibrium_sensitivity(&model, 1e-12, 1e-4).unwrap();
        let exact = -1.0 / (4.0 * 4.0);
        assert!(
            (report.overall_by_rate[0] - exact).abs() < 1e-4,
            "got {}, exact {exact}",
            report.overall_by_rate[0]
        );
    }

    #[test]
    fn most_valuable_computer_is_a_bottleneck() {
        // At medium load the heavily used fast machines are where extra
        // capacity helps most.
        let model = SystemModel::table1_system(0.6).unwrap();
        let report = equilibrium_sensitivity(&model, 1e-9, 1e-3).unwrap();
        let best = report.most_valuable_computer();
        assert!(
            model.computer_rate(best) >= 50.0,
            "most valuable is computer {best} with rate {}",
            model.computer_rate(best)
        );
    }
}
