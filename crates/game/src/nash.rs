//! The NASH distributed load-balancing algorithm (paper §3).
//!
//! Users update their strategies **round-robin**, each playing the exact
//! best reply ([`crate::best_reply`]) against the other users' current
//! strategies (a Gauss–Seidel greedy best-reply scheme). The iteration
//! norm is the paper's
//!
//! ```text
//! norm_l = Σ_j |D_j^{(l)} − D_j^{(l−1)}|
//! ```
//!
//! and the algorithm stops when `norm <= ε`.
//!
//! Two initializations from the paper:
//!
//! * **NASH_0** ([`Initialization::Zero`]) — start from the empty profile
//!   (`s = 0`); the first sweep builds strategies one user at a time, each
//!   seeing only the flows of users that already updated.
//! * **NASH_P** ([`Initialization::Proportional`]) — start from the
//!   proportional allocation `s_ji = μ_i / Σ_k μ_k`, which is close to the
//!   equilibrium and roughly halves the iteration count (Figures 2–3).
//!
//! A **Jacobi** update order (all users best-reply simultaneously against
//! the previous round) is provided for the ablation benches — and the
//! ablation is decisive: on the paper's Table-1 system Jacobi updates
//! *diverge* for three or more users (everyone piles onto the same
//! machines each round), while the paper's round-robin scheme converges
//! in every configuration tested. A randomized-order variant is also
//! available; it behaves like round-robin.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::response::user_response_times;
use crate::strategy::{Strategy, StrategyProfile};
use lb_stats::IterationTrace;

/// Starting point of the best-reply iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Initialization {
    /// NASH_0: the empty profile (`s_ji = 0` for all `j, i`).
    Zero,
    /// NASH_P: every user starts proportional to processing rates.
    Proportional,
    /// Start from a caller-supplied profile.
    Custom(StrategyProfile),
}

/// How users take turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOrder {
    /// The paper's scheme: users update one at a time, round-robin, each
    /// seeing the already-updated strategies of earlier users.
    GaussSeidel,
    /// Ablation: all users best-reply simultaneously to the previous
    /// round's profile. Can overshoot; not guaranteed stable.
    Jacobi,
    /// Ablation: sequential updates like Gauss–Seidel, but each sweep
    /// visits users in a fresh pseudo-random permutation derived from the
    /// seed (deterministic given the seed).
    RandomPermutation(u64),
}

/// Configuration and entry point for the NASH algorithm.
#[derive(Debug, Clone)]
pub struct NashSolver {
    init: Initialization,
    order: UpdateOrder,
    tolerance: f64,
    max_iterations: u32,
}

impl NashSolver {
    /// Creates a solver with the paper's defaults: Gauss–Seidel updates,
    /// tolerance `1e-4`, at most 500 sweeps.
    pub fn new(init: Initialization) -> Self {
        Self {
            init,
            order: UpdateOrder::GaussSeidel,
            tolerance: 1e-4,
            max_iterations: 500,
        }
    }

    /// Sets the convergence tolerance ε on the response-time norm.
    pub fn tolerance(mut self, eps: f64) -> Self {
        self.tolerance = eps;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, iters: u32) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Selects Gauss–Seidel (paper) or Jacobi (ablation) updates.
    pub fn update_order(mut self, order: UpdateOrder) -> Self {
        self.order = order;
        self
    }

    /// Runs the best-reply iteration to a Nash equilibrium.
    ///
    /// # Errors
    ///
    /// * [`GameError::DidNotConverge`] when the iteration budget runs out
    ///   (the partial result is lost; raise `max_iterations`).
    /// * [`GameError::InfeasibleBestReply`] if an update round leaves some
    ///   user without capacity (possible only under Jacobi overshoot).
    pub fn solve(&self, model: &SystemModel) -> Result<NashOutcome, GameError> {
        let m = model.num_users();
        let n = model.num_computers();

        // Working rows: None = "not yet initialized" (the NASH_0 state in
        // which a user contributes no flow).
        let mut rows: Vec<Option<Strategy>> = match &self.init {
            Initialization::Zero => vec![None; m],
            Initialization::Proportional => {
                let total: f64 = model.computer_rates().iter().sum();
                let prop =
                    Strategy::new(model.computer_rates().iter().map(|mu| mu / total).collect())?;
                vec![Some(prop); m]
            }
            Initialization::Custom(p) => {
                // Report whichever dimension actually mismatched — a
                // combined check used to blame the user count even when
                // only the computer count was wrong.
                if p.num_users() != m {
                    return Err(GameError::DimensionMismatch {
                        expected: m,
                        actual: p.num_users(),
                    });
                }
                if p.num_computers() != n {
                    return Err(GameError::DimensionMismatch {
                        expected: n,
                        actual: p.num_computers(),
                    });
                }
                p.strategies().iter().cloned().map(Some).collect()
            }
        };

        // D_j of the current profile (0 for uninitialized users, matching
        // the paper's zero start).
        let mut prev_d = current_user_times(model, &rows);
        let mut trace = IterationTrace::new();

        for iter in 0..self.max_iterations {
            let norm = match self.order {
                UpdateOrder::GaussSeidel | UpdateOrder::RandomPermutation(_) => {
                    let order: Vec<usize> = match self.order {
                        UpdateOrder::RandomPermutation(seed) => {
                            shuffled_users(m, seed ^ u64::from(iter))
                        }
                        _ => (0..m).collect(),
                    };
                    let mut norm = 0.0;
                    for &j in &order {
                        let br = partial_best_reply(model, &rows, j)?;
                        rows[j] = Some(br);
                        let d_new = user_time(model, &rows, j);
                        norm += (d_new - prev_d[j]).abs();
                        prev_d[j] = d_new;
                    }
                    norm
                }
                UpdateOrder::Jacobi => {
                    let replies: Vec<Strategy> = (0..m)
                        .map(|j| partial_best_reply(model, &rows, j))
                        .collect::<Result<_, _>>()?;
                    for (row, br) in rows.iter_mut().zip(replies) {
                        *row = Some(br);
                    }
                    let mut norm = 0.0;
                    for (j, prev) in prev_d.iter_mut().enumerate() {
                        let d_new = user_time(model, &rows, j);
                        norm += (d_new - *prev).abs();
                        *prev = d_new;
                    }
                    norm
                }
            };
            trace.push(norm);
            if norm <= self.tolerance {
                let profile = assemble(rows)?;
                let user_times = user_response_times(model, &profile)?;
                return Ok(NashOutcome {
                    profile,
                    trace,
                    iterations: iter + 1,
                    converged: true,
                    user_times,
                });
            }
        }
        Err(GameError::DidNotConverge {
            iterations: self.max_iterations,
            final_norm: trace.last().unwrap_or(f64::INFINITY),
        })
    }
}

/// Result of a converged NASH run.
#[derive(Debug, Clone)]
pub struct NashOutcome {
    profile: StrategyProfile,
    trace: IterationTrace,
    iterations: u32,
    converged: bool,
    user_times: Vec<f64>,
}

impl NashOutcome {
    /// The equilibrium strategy profile.
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// Per-iteration values of the convergence norm (Figure 2's series).
    pub fn trace(&self) -> &IterationTrace {
        &self.trace
    }

    /// Sweeps performed until convergence (Figure 3's metric).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Whether the tolerance was met (always true for a returned outcome;
    /// kept explicit for forward compatibility).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Per-user expected response times `D_j` at the equilibrium.
    pub fn user_times(&self) -> &[f64] {
        &self.user_times
    }

    /// Consumes the outcome, returning the profile.
    pub fn into_profile(self) -> StrategyProfile {
        self.profile
    }
}

/// Best reply of user `j` against partially initialized rows: users with
/// `None` rows contribute no flow (the NASH_0 start state).
fn partial_best_reply(
    model: &SystemModel,
    rows: &[Option<Strategy>],
    j: usize,
) -> Result<Strategy, GameError> {
    // Available rates: mu_i minus flows of *other, initialized* users.
    let mut avail: Vec<f64> = model.computer_rates().to_vec();
    for (k, row) in rows.iter().enumerate() {
        if k == j {
            continue;
        }
        if let Some(s) = row {
            let phi = model.user_rate(k);
            for (a, f) in avail.iter_mut().zip(s.fractions()) {
                *a -= f * phi;
            }
        }
    }
    let phi_j = model.user_rate(j);
    let flows = crate::best_reply::water_fill_flows(&avail, phi_j).map_err(|e| match e {
        GameError::InfeasibleBestReply {
            available, demand, ..
        } => GameError::InfeasibleBestReply {
            user: j,
            available,
            demand,
        },
        other => other,
    })?;
    Strategy::new(flows.iter().map(|x| x / phi_j).collect())
}

/// `D_j` under partially initialized rows (0 for an uninitialized user).
fn user_time(model: &SystemModel, rows: &[Option<Strategy>], j: usize) -> f64 {
    let Some(own) = rows[j].as_ref() else {
        return 0.0;
    };
    let mut flows = vec![0.0; model.num_computers()];
    for (k, row) in rows.iter().enumerate() {
        if let Some(s) = row {
            let phi = model.user_rate(k);
            for (total, f) in flows.iter_mut().zip(s.fractions()) {
                *total += f * phi;
            }
        }
    }
    let mut d = 0.0;
    for (i, &flow) in flows.iter().enumerate() {
        let s = own.fraction(i);
        if s > 0.0 {
            d += s * lb_queueing::mm1::response_time(flow, model.computer_rate(i));
        }
    }
    d
}

/// Deterministic Fisher–Yates permutation of `0..m` from a seed.
fn shuffled_users(m: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..m).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn current_user_times(model: &SystemModel, rows: &[Option<Strategy>]) -> Vec<f64> {
    (0..rows.len()).map(|j| user_time(model, rows, j)).collect()
}

fn assemble(rows: Vec<Option<Strategy>>) -> Result<StrategyProfile, GameError> {
    let rows: Vec<Strategy> = rows
        .into_iter()
        .map(|r| {
            r.ok_or(GameError::InfeasibleStrategy {
                reason: "user never initialized".into(),
            })
        })
        .collect::<Result<_, _>>()?;
    StrategyProfile::new(rows)
}

/// Convenience: computes the Nash equilibrium with NASH_P defaults.
///
/// # Errors
///
/// See [`NashSolver::solve`].
pub fn nash_equilibrium(model: &SystemModel) -> Result<NashOutcome, GameError> {
    NashSolver::new(Initialization::Proportional).solve(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;

    fn small_model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn converges_from_both_initializations_to_same_point() {
        let model = small_model();
        let a = NashSolver::new(Initialization::Zero)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        let b = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        assert!(a.converged() && b.converged());
        let dist = a.profile().max_l1_distance(b.profile()).unwrap();
        assert!(dist < 1e-4, "equilibria differ by {dist}");
    }

    #[test]
    fn outcome_is_epsilon_nash() {
        let model = small_model();
        let out = nash_equilibrium(&model).unwrap();
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        assert!(gap < 1e-3, "Nash gap {gap}");
    }

    #[test]
    fn profile_is_feasible_and_stable() {
        let model = small_model();
        let out = nash_equilibrium(&model).unwrap();
        out.profile().check_stability(&model).unwrap();
        for j in 0..2 {
            let sum: f64 = out.profile().strategy(j).fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert_eq!(out.user_times().len(), 2);
        assert!(out.user_times().iter().all(|&d| d.is_finite() && d > 0.0));
    }

    #[test]
    fn proportional_init_converges_faster_on_table1() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let zero = NashSolver::new(Initialization::Zero)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        let prop = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        assert!(
            prop.iterations() < zero.iterations(),
            "NASH_P ({}) should beat NASH_0 ({})",
            prop.iterations(),
            zero.iterations()
        );
    }

    #[test]
    fn trace_decays_to_tolerance() {
        let model = small_model();
        let out = NashSolver::new(Initialization::Zero)
            .tolerance(1e-6)
            .solve(&model)
            .unwrap();
        let trace = out.trace();
        assert_eq!(trace.len() as u32, out.iterations());
        assert!(trace.last().unwrap() <= 1e-6);
        // The norm decays overall (allow small non-monotonicity).
        assert!(trace.values()[0] > trace.last().unwrap());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let model = SystemModel::table1_system(0.9).unwrap();
        let err = NashSolver::new(Initialization::Zero)
            .tolerance(1e-12)
            .max_iterations(2)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::DidNotConverge { iterations: 2, .. }
        ));
    }

    #[test]
    fn custom_initialization_works_and_checks_shape() {
        let model = small_model();
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let out = NashSolver::new(Initialization::Custom(p))
            .solve(&model)
            .unwrap();
        assert!(out.converged());
        // Wrong computer count: the error must report the computer
        // dimension (3 vs 2), not the (matching) user counts.
        let bad = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        let err = NashSolver::new(Initialization::Custom(bad))
            .solve(&model)
            .unwrap_err();
        assert_eq!(
            err,
            GameError::DimensionMismatch {
                expected: 3,
                actual: 2
            }
        );
        // Wrong user count is still caught and reported as such.
        let bad = StrategyProfile::replicated(Strategy::uniform(3), 4).unwrap();
        let err = NashSolver::new(Initialization::Custom(bad))
            .solve(&model)
            .unwrap_err();
        assert_eq!(
            err,
            GameError::DimensionMismatch {
                expected: 2,
                actual: 4
            }
        );
    }

    #[test]
    fn jacobi_diverges_beyond_two_users_here() {
        // A key ablation supporting the paper's round-robin design: with
        // simultaneous (Jacobi) updates all users best-respond to the
        // same snapshot and pile onto the same machines; on the Table-1
        // system this oscillates into saturation for m >= 3 while the
        // paper's Gauss-Seidel scheme converges for every m tested.
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 4, 0.6).unwrap();
        let err = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::Jacobi)
            .tolerance(1e-4)
            .max_iterations(2000)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(err, GameError::DidNotConverge { .. }));
        // Gauss-Seidel on the identical instance converges quickly.
        let ok = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        assert!(ok.converged());
    }

    #[test]
    fn jacobi_reaches_the_same_equilibrium_here() {
        let model = small_model();
        let gs = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        let jac = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::Jacobi)
            .tolerance(1e-10)
            .max_iterations(2000)
            .solve(&model)
            .unwrap();
        let dist = gs.profile().max_l1_distance(jac.profile()).unwrap();
        assert!(dist < 1e-4, "Jacobi and Gauss-Seidel disagree by {dist}");
    }

    #[test]
    fn single_user_equilibrium_is_its_optimum() {
        // With one user the Nash equilibrium is just the user's optimum.
        let model = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
        let out = nash_equilibrium(&model).unwrap();
        let rates = model.computer_rates();
        let flows: Vec<f64> = out
            .profile()
            .strategy(0)
            .fractions()
            .iter()
            .map(|s| s * 12.0)
            .collect();
        assert!(crate::best_reply::satisfies_kkt(rates, &flows, 1e-6));
    }

    #[test]
    fn random_permutation_order_reaches_the_same_equilibrium() {
        let model = small_model();
        let gs = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        for seed in [1u64, 42, 777] {
            let rp = NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::RandomPermutation(seed))
                .tolerance(1e-10)
                .solve(&model)
                .unwrap();
            let dist = gs.profile().max_l1_distance(rp.profile()).unwrap();
            assert!(dist < 1e-4, "seed {seed}: differs by {dist}");
        }
    }

    #[test]
    fn random_permutation_is_deterministic_per_seed() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let a = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::RandomPermutation(9))
            .solve(&model)
            .unwrap();
        let b = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::RandomPermutation(9))
            .solve(&model)
            .unwrap();
        assert_eq!(a.iterations(), b.iterations());
        assert_eq!(a.trace().values(), b.trace().values());
    }

    #[test]
    fn many_users_converge_at_high_load() {
        // The paper observes convergence for up to 32 users; exercise 16
        // equal users at 80% utilization.
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 16, 0.8).unwrap();
        let out = nash_equilibrium(&model).unwrap();
        assert!(out.converged());
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        assert!(gap < 1e-2, "gap {gap}");
    }
}
