//! The NASH distributed load-balancing algorithm (paper §3).
//!
//! Users update their strategies **round-robin**, each playing the exact
//! best reply ([`crate::best_reply`]) against the other users' current
//! strategies (a Gauss–Seidel greedy best-reply scheme). The iteration
//! norm is the paper's
//!
//! ```text
//! norm_l = Σ_j |D_j^{(l)} − D_j^{(l−1)}|
//! ```
//!
//! and the paper stops when `norm <= ε`. That absolute criterion is
//! scale-dependent (see [`crate::stopping`]), so it is no longer the
//! default: the solver stops on a certified relative ε-Nash gap
//! ([`crate::stopping::StoppingRule::CertifiedGap`]) computed each sweep
//! from the water-filling KKT residual, and the paper's rule remains
//! available as an explicit opt-in
//! ([`NashSolver::stopping_rule`] + [`crate::stopping::StoppingRule::AbsoluteNorm`])
//! for byte-identical figure reproduction.
//!
//! Two initializations from the paper:
//!
//! * **NASH_0** ([`Initialization::Zero`]) — start from the empty profile
//!   (`s = 0`); the first sweep builds strategies one user at a time, each
//!   seeing only the flows of users that already updated.
//! * **NASH_P** ([`Initialization::Proportional`]) — start from the
//!   proportional allocation `s_ji = μ_i / Σ_k μ_k`, which is close to the
//!   equilibrium and roughly halves the iteration count (Figures 2–3).
//!
//! A **Jacobi** update order (all users best-reply simultaneously against
//! the previous round) is provided for the ablation benches — and the
//! ablation is decisive: on the paper's Table-1 system Jacobi updates
//! *diverge* for three or more users (everyone piles onto the same
//! machines each round), while the paper's round-robin scheme converges
//! in every configuration tested. A randomized-order variant is also
//! available; it behaves like round-robin.

use crate::best_reply::{water_fill_flows_into, WaterFillScratch};
use crate::error::GameError;
use crate::model::SystemModel;
use crate::response::user_response_times;
use crate::stopping::{user_regret, Certificate, StoppingRule};
use crate::strategy::{Strategy, StrategyProfile};
use lb_stats::IterationTrace;
use lb_telemetry::Collector;
use std::fmt;
use std::sync::Arc;

/// Starting point of the best-reply iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Initialization {
    /// NASH_0: the empty profile (`s_ji = 0` for all `j, i`).
    Zero,
    /// NASH_P: every user starts proportional to processing rates.
    Proportional,
    /// Start from a caller-supplied profile.
    Custom(StrategyProfile),
}

/// How users take turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOrder {
    /// The paper's scheme: users update one at a time, round-robin, each
    /// seeing the already-updated strategies of earlier users.
    GaussSeidel,
    /// Ablation: all users best-reply simultaneously to the previous
    /// round's profile. Can overshoot; not guaranteed stable.
    Jacobi,
    /// Ablation: sequential updates like Gauss–Seidel, but each sweep
    /// visits users in a fresh pseudo-random permutation derived from the
    /// seed (deterministic given the seed).
    RandomPermutation(u64),
}

/// Configuration and entry point for the NASH algorithm.
#[derive(Clone)]
pub struct NashSolver {
    init: Initialization,
    order: UpdateOrder,
    tolerance: f64,
    stopping: StoppingRule,
    max_iterations: u32,
    threads: usize,
    collector: Option<Arc<dyn Collector>>,
}

impl fmt::Debug for NashSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NashSolver")
            .field("init", &self.init)
            .field("order", &self.order)
            .field("tolerance", &self.tolerance)
            .field("stopping", &self.stopping)
            .field("max_iterations", &self.max_iterations)
            .field("threads", &self.threads)
            .field(
                "collector",
                &self.collector.as_ref().map(|_| "<dyn Collector>"),
            )
            .finish()
    }
}

impl NashSolver {
    /// Creates a solver with the paper's structure (Gauss–Seidel updates,
    /// at most 500 sweeps, ε = `1e-4`) but the scale-invariant
    /// [`StoppingRule::CertifiedGap`] criterion. Use
    /// [`NashSolver::stopping_rule`] with [`StoppingRule::AbsoluteNorm`]
    /// to reproduce the paper's stopping behavior exactly.
    pub fn new(init: Initialization) -> Self {
        Self {
            init,
            order: UpdateOrder::GaussSeidel,
            tolerance: 1e-4,
            stopping: StoppingRule::default(),
            max_iterations: 500,
            threads: 1,
            collector: None,
        }
    }

    /// Sets the convergence tolerance ε — the single accuracy knob for
    /// every stopping rule: the norm threshold under
    /// [`StoppingRule::AbsoluteNorm`], the relative-norm threshold under
    /// [`StoppingRule::RelativeNorm`], and (kept in sync automatically)
    /// the certified relative gap under [`StoppingRule::CertifiedGap`].
    pub fn tolerance(mut self, eps: f64) -> Self {
        self.tolerance = eps;
        if let StoppingRule::CertifiedGap { epsilon } = &mut self.stopping {
            *epsilon = eps;
        }
        self
    }

    /// Selects the stopping rule. Selecting
    /// [`StoppingRule::CertifiedGap`] also adopts its `epsilon` as the
    /// solver tolerance, so an explicit certified ε wins over an earlier
    /// [`NashSolver::tolerance`] call while a later `tolerance` call
    /// still retunes it — the two knobs can never disagree.
    pub fn stopping_rule(mut self, rule: StoppingRule) -> Self {
        if let StoppingRule::CertifiedGap { epsilon } = rule {
            self.tolerance = epsilon;
        }
        self.stopping = rule;
        self
    }

    /// Sets the iteration budget.
    pub fn max_iterations(mut self, iters: u32) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Selects Gauss–Seidel (paper) or Jacobi (ablation) updates.
    pub fn update_order(mut self, order: UpdateOrder) -> Self {
        self.order = order;
        self
    }

    /// Number of worker threads for the Jacobi sweep (clamped to ≥ 1).
    ///
    /// Only the Jacobi order parallelizes: its replies are all computed
    /// against the frozen previous round, so each is a pure function of
    /// that snapshot and the fan-out is bit-identical to the sequential
    /// sweep at any thread count. Gauss–Seidel is inherently sequential
    /// (each user sees earlier users' updates) and ignores this knob.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a telemetry collector. The solver then emits
    /// `solver.start`, one `solver.sweep` per iteration (iterate norm,
    /// max per-user `D_j` delta, water-fill prefix-size statistics,
    /// cumulative workspace-refresh count), and `solver.done`. Events
    /// are emitted strictly *after* the computation they describe, so
    /// results are bit-identical with or without a collector.
    pub fn collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs the best-reply iteration to a Nash equilibrium.
    ///
    /// # Errors
    ///
    /// * [`GameError::ZeroIterationBudget`] when `max_iterations == 0` —
    ///   no sweep can run, so there is no norm to report and nothing that
    ///   could honestly converge.
    /// * [`GameError::DidNotConverge`] when the iteration budget runs out
    ///   (the partial result is lost; raise `max_iterations` or use
    ///   [`NashSolver::solve_partial`]).
    /// * [`GameError::InfeasibleBestReply`] if an update round leaves some
    ///   user without capacity (possible only under Jacobi overshoot).
    pub fn solve(&self, model: &SystemModel) -> Result<NashOutcome, GameError> {
        self.solve_inner(model, false)
    }

    /// Like [`NashSolver::solve`], but exhausting the iteration budget
    /// returns the best-so-far outcome (with
    /// [`NashOutcome::converged`]` == false`) instead of discarding it —
    /// the anytime entry point: pair with [`NashOutcome::certificates`]
    /// to read off how good the truncated profile provably is.
    ///
    /// # Errors
    ///
    /// Same as [`NashSolver::solve`] minus [`GameError::DidNotConverge`].
    pub fn solve_partial(&self, model: &SystemModel) -> Result<NashOutcome, GameError> {
        self.solve_inner(model, true)
    }

    fn solve_inner(
        &self,
        model: &SystemModel,
        allow_partial: bool,
    ) -> Result<NashOutcome, GameError> {
        if self.max_iterations == 0 {
            return Err(GameError::ZeroIterationBudget);
        }
        let m = model.num_users();
        let n = model.num_computers();
        let jacobi = matches!(self.order, UpdateOrder::Jacobi);
        let mut ws = Workspace::new(m, n, jacobi);

        // Seed the flow matrix. A row of zeros with `active = false` is
        // the NASH_0 "not yet initialized" state in which a user
        // contributes no flow.
        match &self.init {
            Initialization::Zero => {}
            Initialization::Proportional => {
                let total: f64 = model.computer_rates().iter().sum();
                for j in 0..m {
                    let phi = model.user_rate(j);
                    for (x, mu) in ws.flows.row_mut(j).iter_mut().zip(model.computer_rates()) {
                        *x = mu / total * phi;
                    }
                    ws.active[j] = true;
                }
            }
            Initialization::Custom(p) => {
                // Report whichever dimension actually mismatched — a
                // combined check used to blame the user count even when
                // only the computer count was wrong.
                if p.num_users() != m {
                    return Err(GameError::DimensionMismatch {
                        expected: m,
                        actual: p.num_users(),
                    });
                }
                if p.num_computers() != n {
                    return Err(GameError::DimensionMismatch {
                        expected: n,
                        actual: p.num_computers(),
                    });
                }
                for j in 0..m {
                    let phi = model.user_rate(j);
                    let s = p.strategy(j);
                    for (i, x) in ws.flows.row_mut(j).iter_mut().enumerate() {
                        *x = s.fraction(i) * phi;
                    }
                    ws.active[j] = true;
                }
            }
        };

        // D_j of the current profile (0 for uninitialized users, matching
        // the paper's zero start).
        ws.refresh_loads();
        for j in 0..m {
            ws.prev_d[j] = row_time(model, &ws.loads, ws.flows.row(j), model.user_rate(j));
        }
        let mut trace = IterationTrace::new();
        // One certificate per sweep when the rule needs them (empty for
        // the norm-based rules, which keeps the repro path cost-free).
        let mut certificates: Vec<Certificate> = Vec::new();

        // Resolved once: `None` (the default) keeps the hot loop on a
        // single pointer check per sweep.
        let collect = lb_telemetry::enabled(self.collector.as_ref());
        if let Some(c) = collect {
            c.emit(
                "solver.start",
                &[
                    ("init", init_label(&self.init).into()),
                    ("order", order_label(&self.order).into()),
                    ("users", m.into()),
                    ("computers", n.into()),
                    ("tolerance", self.tolerance.into()),
                    ("stopping", self.stopping.label().into()),
                    ("max_iterations", self.max_iterations.into()),
                    ("threads", self.threads.into()),
                ],
            );
        }
        // Causal span for the whole solve; `None` when collection is
        // off, so the span layer costs nothing on the default path.
        let solve_span = lb_telemetry::Span::root(
            self.collector.as_ref(),
            "solver.solve",
            &[
                ("init", init_label(&self.init).into()),
                ("order", order_label(&self.order).into()),
                ("users", m.into()),
                ("computers", n.into()),
            ],
        );

        for iter in 0..self.max_iterations {
            let sweep_span = solve_span
                .as_ref()
                .map(|s| s.child("solver.sweep", &[("iter", (iter + 1).into())]));
            let (norm, max_delta) = match self.order {
                UpdateOrder::GaussSeidel | UpdateOrder::RandomPermutation(_) => {
                    match self.order {
                        UpdateOrder::RandomPermutation(seed) => {
                            shuffled_users_into(&mut ws.sweep_order, m, seed ^ u64::from(iter));
                        }
                        _ => {
                            ws.sweep_order.clear();
                            ws.sweep_order.extend(0..m);
                        }
                    }
                    // One exact O(mn) refresh per sweep bounds the drift
                    // of the O(n) incremental load updates below.
                    ws.refresh_loads();
                    let mut norm = 0.0;
                    let mut max_delta = 0.0f64;
                    for idx in 0..m {
                        let j = ws.sweep_order[idx];
                        // One span per best-reply, so the critical path
                        // attributes sweep time to individual users. (If
                        // the reply errors, the span closes on drop.)
                        let reply_span = sweep_span
                            .as_ref()
                            .map(|s| s.child("solver.best_reply", &[("user", j.into())]));
                        let d_new = ws.update_user(model, j)?;
                        if let Some(span) = reply_span {
                            span.close_with(&[("d", d_new.into())]);
                        }
                        let delta = (d_new - ws.prev_d[j]).abs();
                        norm += delta;
                        max_delta = max_delta.max(delta);
                        ws.prev_d[j] = d_new;
                    }
                    (norm, max_delta)
                }
                UpdateOrder::Jacobi => {
                    // All replies answer the frozen previous round, so
                    // they are independent and (optionally) fan out
                    // across threads bit-identically.
                    ws.refresh_loads();
                    // Jacobi replies are one batch against the frozen
                    // round, so a single span covers all m of them.
                    let batch_span = sweep_span.as_ref().map(|s| {
                        s.child(
                            "solver.jacobi",
                            &[("users", m.into()), ("threads", self.threads.into())],
                        )
                    });
                    if self.threads > 1 && m > 1 {
                        jacobi_replies_parallel(
                            model,
                            &ws.flows,
                            &ws.loads,
                            &mut ws.next_flows,
                            self.threads,
                        )?;
                    } else {
                        jacobi_replies_sequential(
                            model,
                            &ws.flows,
                            &ws.loads,
                            &mut ws.avail,
                            &mut ws.wf,
                            &mut ws.reply,
                            &mut ws.next_flows,
                        )?;
                    }
                    // One water-fill per user per Jacobi batch, whether
                    // the batch ran sequentially or fanned out.
                    ws.best_replies += m as u64;
                    ws.water_fills += m as u64;
                    if let Some(span) = batch_span {
                        span.close();
                    }
                    std::mem::swap(&mut ws.flows, &mut ws.next_flows);
                    ws.active.fill(true);
                    ws.refresh_loads();
                    let mut norm = 0.0;
                    let mut max_delta = 0.0f64;
                    for j in 0..m {
                        let d_new = row_time(model, &ws.loads, ws.flows.row(j), model.user_rate(j));
                        let delta = (d_new - ws.prev_d[j]).abs();
                        norm += delta;
                        max_delta = max_delta.max(delta);
                        ws.prev_d[j] = d_new;
                    }
                    (norm, max_delta)
                }
            };
            trace.push(norm);
            // The regret certificate reuses the loads/flows the sweep
            // just produced — O(mn), the same order as the sweep itself,
            // and no extra `refresh_loads` (collector-observable state
            // stays untouched).
            let certificate = if self.stopping.needs_certificate() {
                let cert = ws.certificate(model);
                certificates.push(cert);
                Some(cert)
            } else {
                None
            };
            let total_d: f64 = ws.prev_d.iter().sum();
            let converged =
                self.stopping
                    .accepts(self.tolerance, norm, total_d, certificate.as_ref());
            if let Some(c) = collect {
                // Payload assembly (an O(mn) prefix scan) happens only
                // with an enabled collector attached.
                let (p_min, p_max, p_mean) = ws.prefix_stats();
                let mut fields: Vec<lb_telemetry::Field> = vec![
                    ("iter", (iter + 1).into()),
                    ("norm", norm.into()),
                    ("max_d_delta", max_delta.into()),
                    ("wf_prefix_min", p_min.into()),
                    ("wf_prefix_max", p_max.into()),
                    ("wf_prefix_mean", p_mean.into()),
                    ("refreshes", ws.refreshes.into()),
                    ("stopping", self.stopping.label().into()),
                    ("converged", converged.into()),
                ];
                if let Some(cert) = &certificate {
                    fields.push(("cert_gap", cert.absolute.into()));
                    fields.push(("cert_rel", cert.relative.into()));
                }
                c.emit("solver.sweep", &fields);
            }
            if let Some(span) = sweep_span {
                span.close_with(&[("norm", norm.into()), ("converged", converged.into())]);
            }
            if converged {
                let profile = ws.assemble(model)?;
                let user_times = user_response_times(model, &profile)?;
                if let Some(c) = collect {
                    let mut fields: Vec<lb_telemetry::Field> = vec![
                        ("iterations", (iter + 1).into()),
                        ("converged", true.into()),
                        ("final_norm", norm.into()),
                        ("stopping", self.stopping.label().into()),
                    ];
                    if let Some(cert) = certificates.last() {
                        fields.push(("cert_gap", cert.absolute.into()));
                        fields.push(("cert_rel", cert.relative.into()));
                    }
                    c.emit("solver.done", &fields);
                    c.emit(
                        "account.solver",
                        &[
                            ("sweeps", (iter + 1).into()),
                            ("best_replies", ws.best_replies.into()),
                            ("water_fills", ws.water_fills.into()),
                            ("refreshes", ws.refreshes.into()),
                        ],
                    );
                }
                if let Some(span) = solve_span {
                    span.close_with(&[
                        ("iterations", (iter + 1).into()),
                        ("converged", true.into()),
                    ]);
                }
                return Ok(NashOutcome {
                    profile,
                    trace,
                    iterations: iter + 1,
                    converged: true,
                    user_times,
                    certificates,
                });
            }
        }
        let final_norm = trace.last().unwrap_or(f64::INFINITY);
        if let Some(c) = collect {
            let mut fields: Vec<lb_telemetry::Field> = vec![
                ("iterations", self.max_iterations.into()),
                ("converged", false.into()),
                ("final_norm", final_norm.into()),
                ("stopping", self.stopping.label().into()),
            ];
            if let Some(cert) = certificates.last() {
                fields.push(("cert_gap", cert.absolute.into()));
                fields.push(("cert_rel", cert.relative.into()));
            }
            c.emit("solver.done", &fields);
            c.emit(
                "account.solver",
                &[
                    ("sweeps", self.max_iterations.into()),
                    ("best_replies", ws.best_replies.into()),
                    ("water_fills", ws.water_fills.into()),
                    ("refreshes", ws.refreshes.into()),
                ],
            );
        }
        if let Some(span) = solve_span {
            span.close_with(&[
                ("iterations", self.max_iterations.into()),
                ("converged", false.into()),
            ]);
        }
        if allow_partial {
            let profile = ws.assemble(model)?;
            let user_times = user_response_times(model, &profile)?;
            return Ok(NashOutcome {
                profile,
                trace,
                iterations: self.max_iterations,
                converged: false,
                user_times,
                certificates,
            });
        }
        Err(GameError::DidNotConverge {
            iterations: self.max_iterations,
            final_norm,
        })
    }
}

/// Result of a NASH run (converged, or partial via
/// [`NashSolver::solve_partial`]).
#[derive(Debug, Clone)]
pub struct NashOutcome {
    profile: StrategyProfile,
    trace: IterationTrace,
    iterations: u32,
    converged: bool,
    user_times: Vec<f64>,
    certificates: Vec<Certificate>,
}

impl NashOutcome {
    /// The equilibrium strategy profile.
    pub fn profile(&self) -> &StrategyProfile {
        &self.profile
    }

    /// Per-iteration values of the convergence norm (Figure 2's series).
    pub fn trace(&self) -> &IterationTrace {
        &self.trace
    }

    /// Sweeps performed until convergence (Figure 3's metric).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Whether the stopping rule accepted (always true from
    /// [`NashSolver::solve`]; may be false from
    /// [`NashSolver::solve_partial`]).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Per-sweep regret certificates, in sweep order. Populated only
    /// under [`StoppingRule::CertifiedGap`] (empty for the norm rules,
    /// whose sweeps never compute one).
    pub fn certificates(&self) -> &[Certificate] {
        &self.certificates
    }

    /// The final sweep's regret certificate: a proved upper bound on the
    /// profile's ε-Nash gap (absolute and relative forms). `None` when
    /// the stopping rule did not compute certificates.
    pub fn certified_gap(&self) -> Option<Certificate> {
        self.certificates.last().copied()
    }

    /// Per-user expected response times `D_j` at the equilibrium.
    pub fn user_times(&self) -> &[f64] {
        &self.user_times
    }

    /// Consumes the outcome, returning the profile.
    pub fn into_profile(self) -> StrategyProfile {
        self.profile
    }
}

/// Contiguous row-major `m × n` flow storage. One allocation for the
/// whole matrix; row `j` is the `n`-wide slice at offset `j·n`. Replaces
/// the old `Vec<Vec<f64>>` rows: sweeps walk the matrix linearly (no
/// pointer chasing, hardware prefetch friendly) and the parallel Jacobi
/// fan-out splits `data` into disjoint row-aligned chunks directly.
struct FlowMatrix {
    data: Vec<f64>,
    /// Row stride (`n`).
    computers: usize,
}

impl FlowMatrix {
    fn new(users: usize, computers: usize) -> Self {
        Self {
            data: vec![0.0; users * computers],
            computers,
        }
    }

    fn num_users(&self) -> usize {
        self.data.len().checked_div(self.computers).unwrap_or(0)
    }

    fn row(&self, j: usize) -> &[f64] {
        &self.data[j * self.computers..(j + 1) * self.computers]
    }

    fn row_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.computers..(j + 1) * self.computers]
    }

    fn rows(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.computers.max(1))
    }

    fn rows_mut(&mut self) -> std::slice::ChunksExactMut<'_, f64> {
        self.data.chunks_exact_mut(self.computers.max(1))
    }

    fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Persistent solver scratch: one allocation set at `solve` entry, zero
/// heap traffic per sweep. Rows hold *absolute* flows `x_ji = s_ji φ_j`;
/// `loads` caches the per-computer aggregates `Σ_k x_ki` so each user
/// update costs O(n) (subtract the old row, solve, add the new row)
/// instead of the old O(mn) recompute.
struct Workspace {
    /// Per-user absolute flows, contiguous row-major (`m × n`).
    flows: FlowMatrix,
    /// Whether a user has played at least once (NASH_0 starts all-false).
    active: Vec<bool>,
    /// Aggregate flow per computer over all rows.
    loads: Vec<f64>,
    /// Scratch: available rates seen by the updating user.
    avail: Vec<f64>,
    /// Scratch: water-filling output row.
    reply: Vec<f64>,
    /// Reusable sort-index buffer for the water-filling kernel.
    wf: WaterFillScratch,
    /// Reusable sweep-order buffer (identity or shuffled).
    sweep_order: Vec<usize>,
    /// `D_j` after each user's latest update (the norm's reference).
    prev_d: Vec<f64>,
    /// Jacobi double buffer (zero rows unless the order is Jacobi).
    next_flows: FlowMatrix,
    /// Exact `loads` recomputes performed so far (telemetry's
    /// workspace-refresh marker; one per GS sweep, two per Jacobi).
    refreshes: u64,
    /// Best-reply computations performed (one per user per sweep).
    best_replies: u64,
    /// Water-fill invocations performed (one per best reply here; the
    /// sampled solver retries widened candidate sets, so there the two
    /// counters diverge).
    water_fills: u64,
}

impl Workspace {
    fn new(m: usize, n: usize, jacobi: bool) -> Self {
        Self {
            flows: FlowMatrix::new(m, n),
            active: vec![false; m],
            loads: vec![0.0; n],
            avail: vec![0.0; n],
            reply: Vec::with_capacity(n),
            wf: WaterFillScratch::default(),
            sweep_order: Vec::with_capacity(m),
            prev_d: vec![0.0; m],
            next_flows: if jacobi {
                FlowMatrix::new(m, n)
            } else {
                FlowMatrix::new(0, n)
            },
            refreshes: 0,
            best_replies: 0,
            water_fills: 0,
        }
    }

    /// Recomputes `loads` exactly from the rows (fixed row order, so the
    /// result is deterministic and incremental drift cannot accumulate
    /// across sweeps).
    fn refresh_loads(&mut self) {
        self.loads.fill(0.0);
        for row in self.flows.rows() {
            for (l, &x) in self.loads.iter_mut().zip(row) {
                *l += x;
            }
        }
        self.refreshes += 1;
    }

    /// Water-fill prefix sizes — how many computers each active user's
    /// reply actually touches — as (min, max, mean) over active users.
    /// Telemetry-only; never called on the disabled path.
    fn prefix_stats(&self) -> (u64, u64, f64) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total = 0u64;
        let mut users = 0u64;
        for (row, &active) in self.flows.rows().zip(&self.active) {
            if !active {
                continue;
            }
            let prefix = row.iter().filter(|&&x| x > 0.0).count() as u64;
            min = min.min(prefix);
            max = max.max(prefix);
            total += prefix;
            users += 1;
        }
        if users == 0 {
            (0, 0, 0.0)
        } else {
            (min, max, total as f64 / users as f64)
        }
    }

    /// Gauss–Seidel step for user `j`: O(n) incremental availability,
    /// water-fill into the reuse buffer, O(n) load patch, row swap.
    /// Returns the user's new `D_j`.
    fn update_user(&mut self, model: &SystemModel, j: usize) -> Result<f64, GameError> {
        let n = self.loads.len();
        let phi = model.user_rate(j);
        {
            let row = self.flows.row(j);
            for (i, &flow) in row.iter().enumerate().take(n) {
                self.avail[i] = model.computer_rate(i) - (self.loads[i] - flow);
            }
        }
        self.best_replies += 1;
        self.water_fills += 1;
        water_fill_flows_into(&self.avail, phi, &mut self.wf, &mut self.reply)
            .map_err(|e| rename_infeasible(e, j))?;
        let row = self.flows.row_mut(j);
        for (i, &flow) in row.iter().enumerate().take(n) {
            self.loads[i] += self.reply[i] - flow;
        }
        row.copy_from_slice(&self.reply);
        self.active[j] = true;
        Ok(row_time(model, &self.loads, self.flows.row(j), phi))
    }

    /// The sweep's regret certificate from the current `(flows, loads)`
    /// state: each active user's Frank–Wolfe regret bound max-reduced
    /// into a [`Certificate`] (see [`crate::stopping`]). O(mn), reads
    /// the loads the sweep already maintains — no `refresh_loads`, so
    /// telemetry counters and solver state are unperturbed.
    fn certificate(&self, model: &SystemModel) -> Certificate {
        let mut cert = Certificate::zero();
        for (j, row) in self.flows.rows().enumerate() {
            if !self.active[j] {
                continue;
            }
            let (r, d) = user_regret(model.computer_rates(), &self.loads, row, model.user_rate(j));
            cert.absorb(r, d);
        }
        cert
    }

    /// Converts the flow rows back into a strategy profile.
    fn assemble(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        let mut rows = Vec::with_capacity(self.flows.num_users());
        for (j, row) in self.flows.rows().enumerate() {
            if !self.active[j] {
                return Err(GameError::InfeasibleStrategy {
                    reason: "user never initialized".into(),
                });
            }
            let phi = model.user_rate(j);
            rows.push(Strategy::new(row.iter().map(|x| x / phi).collect())?);
        }
        StrategyProfile::new(rows)
    }
}

/// `D_j` of the flow row `row` given the current aggregate `loads`
/// (zero rows — uninitialized users — naturally cost 0).
fn row_time(model: &SystemModel, loads: &[f64], row: &[f64], phi: f64) -> f64 {
    let mut d = 0.0;
    for (i, &x) in row.iter().enumerate() {
        if x > 0.0 {
            d += x / phi * lb_queueing::mm1::response_time(loads[i], model.computer_rate(i));
        }
    }
    d
}

/// Static label for the `solver.start` init field.
fn init_label(init: &Initialization) -> &'static str {
    match init {
        Initialization::Zero => "NASH_0",
        Initialization::Proportional => "NASH_P",
        Initialization::Custom(_) => "custom",
    }
}

/// Static label for the `solver.start` order field.
fn order_label(order: &UpdateOrder) -> &'static str {
    match order {
        UpdateOrder::GaussSeidel => "gauss_seidel",
        UpdateOrder::Jacobi => "jacobi",
        UpdateOrder::RandomPermutation(_) => "random_permutation",
    }
}

/// Restamps an infeasible-best-reply error with the updating user.
fn rename_infeasible(e: GameError, j: usize) -> GameError {
    match e {
        GameError::InfeasibleBestReply {
            available, demand, ..
        } => GameError::InfeasibleBestReply {
            user: j,
            available,
            demand,
        },
        other => other,
    }
}

/// The sequential twin of [`jacobi_replies_parallel`]: same per-user
/// kernel against the same frozen snapshot, using the shared workspace
/// scratch so the sweep stays allocation-free.
fn jacobi_replies_sequential(
    model: &SystemModel,
    flows: &FlowMatrix,
    loads: &[f64],
    avail: &mut [f64],
    wf: &mut WaterFillScratch,
    reply: &mut Vec<f64>,
    next: &mut FlowMatrix,
) -> Result<(), GameError> {
    let n = loads.len();
    for (j, out_row) in next.rows_mut().enumerate() {
        let row = flows.row(j);
        for i in 0..n {
            avail[i] = model.computer_rate(i) - (loads[i] - row[i]);
        }
        water_fill_flows_into(&*avail, model.user_rate(j), wf, reply)
            .map_err(|e| rename_infeasible(e, j))?;
        out_row.copy_from_slice(reply);
    }
    Ok(())
}

/// One standalone Jacobi round: every user's exact best reply to the
/// frozen `profile`, fanned out over up to `threads` workers. Replies
/// are pure functions of the snapshot, so the result is bit-identical
/// for any thread count. At a Nash equilibrium the round reproduces the
/// profile (up to solver tolerance), which makes it a cheap stability
/// probe; away from equilibrium it is the ablation step that diverges
/// for m ≥ 3 when iterated (see [`UpdateOrder::Jacobi`]).
///
/// # Errors
///
/// * [`GameError::DimensionMismatch`] when profile and model disagree.
/// * [`GameError::InfeasibleBestReply`] when some user lacks capacity
///   against the frozen profile (lowest-indexed user wins).
pub fn jacobi_round(
    model: &SystemModel,
    profile: &StrategyProfile,
    threads: usize,
) -> Result<StrategyProfile, GameError> {
    let m = model.num_users();
    let n = model.num_computers();
    if profile.num_users() != m {
        return Err(GameError::DimensionMismatch {
            expected: m,
            actual: profile.num_users(),
        });
    }
    if profile.num_computers() != n {
        return Err(GameError::DimensionMismatch {
            expected: n,
            actual: profile.num_computers(),
        });
    }
    let mut ws = Workspace::new(m, n, true);
    for j in 0..m {
        let phi = model.user_rate(j);
        let s = profile.strategy(j);
        for (i, x) in ws.flows.row_mut(j).iter_mut().enumerate() {
            *x = s.fraction(i) * phi;
        }
        ws.active[j] = true;
    }
    ws.refresh_loads();
    if threads > 1 && m > 1 {
        jacobi_replies_parallel(model, &ws.flows, &ws.loads, &mut ws.next_flows, threads)?;
    } else {
        jacobi_replies_sequential(
            model,
            &ws.flows,
            &ws.loads,
            &mut ws.avail,
            &mut ws.wf,
            &mut ws.reply,
            &mut ws.next_flows,
        )?;
    }
    std::mem::swap(&mut ws.flows, &mut ws.next_flows);
    ws.assemble(model)
}

/// Computes every user's Jacobi reply to the frozen `(flows, loads)`
/// snapshot across `threads` workers. Each reply is a pure function of
/// the snapshot, so the result is bit-identical to the sequential sweep
/// for any thread count; the contiguous flow matrix splits into disjoint
/// row-aligned chunks (no per-row pointer indirection), and the
/// lowest-indexed failing user wins error reporting just like the
/// sequential loop.
fn jacobi_replies_parallel(
    model: &SystemModel,
    flows: &FlowMatrix,
    loads: &[f64],
    next: &mut FlowMatrix,
    threads: usize,
) -> Result<(), GameError> {
    let m = flows.num_users();
    let n = loads.len();
    let chunk = m.div_ceil(threads.min(m));
    let failure = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, rows) in next.data_mut().chunks_mut(chunk * n).enumerate() {
            let start = t * chunk;
            handles.push(s.spawn(move |_| {
                let mut avail = vec![0.0; n];
                let mut wf = WaterFillScratch::default();
                let mut reply: Vec<f64> = Vec::with_capacity(n);
                for (off, out_row) in rows.chunks_exact_mut(n).enumerate() {
                    let j = start + off;
                    let row = flows.row(j);
                    for i in 0..n {
                        avail[i] = model.computer_rate(i) - (loads[i] - row[i]);
                    }
                    if let Err(e) =
                        water_fill_flows_into(&avail, model.user_rate(j), &mut wf, &mut reply)
                    {
                        return Some((j, rename_infeasible(e, j)));
                    }
                    out_row.copy_from_slice(&reply);
                }
                None
            }));
        }
        let mut first: Option<(usize, GameError)> = None;
        for h in handles {
            let outcome = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            if let Some((j, e)) = outcome {
                if first.as_ref().is_none_or(|(fj, _)| j < *fj) {
                    first = Some((j, e));
                }
            }
        }
        first
    })
    .unwrap_or_else(|p| std::panic::resume_unwind(p));
    match failure {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// Deterministic Fisher–Yates permutation of `0..m` from a seed, written
/// into the reusable `order` buffer.
fn shuffled_users_into(order: &mut Vec<usize>, m: usize, seed: u64) {
    order.clear();
    order.extend(0..m);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for i in (1..m).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
}

/// Convenience: computes the Nash equilibrium with NASH_P defaults.
///
/// # Errors
///
/// See [`NashSolver::solve`].
pub fn nash_equilibrium(model: &SystemModel) -> Result<NashOutcome, GameError> {
    NashSolver::new(Initialization::Proportional).solve(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;

    fn small_model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    #[test]
    fn converges_from_both_initializations_to_same_point() {
        let model = small_model();
        let a = NashSolver::new(Initialization::Zero)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        let b = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        assert!(a.converged() && b.converged());
        let dist = a.profile().max_l1_distance(b.profile()).unwrap();
        assert!(dist < 1e-4, "equilibria differ by {dist}");
    }

    #[test]
    fn outcome_is_epsilon_nash() {
        let model = small_model();
        let out = nash_equilibrium(&model).unwrap();
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        assert!(gap < 1e-3, "Nash gap {gap}");
    }

    #[test]
    fn profile_is_feasible_and_stable() {
        let model = small_model();
        let out = nash_equilibrium(&model).unwrap();
        out.profile().check_stability(&model).unwrap();
        for j in 0..2 {
            let sum: f64 = out.profile().strategy(j).fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert_eq!(out.user_times().len(), 2);
        assert!(out.user_times().iter().all(|&d| d.is_finite() && d > 0.0));
    }

    #[test]
    fn proportional_init_converges_faster_on_table1() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let zero = NashSolver::new(Initialization::Zero)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        let prop = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        assert!(
            prop.iterations() < zero.iterations(),
            "NASH_P ({}) should beat NASH_0 ({})",
            prop.iterations(),
            zero.iterations()
        );
    }

    #[test]
    fn trace_decays_to_tolerance() {
        // Norm semantics of the paper's rule: pinned to AbsoluteNorm
        // (the default certified rule stops on the gap, not the norm).
        let model = small_model();
        let out = NashSolver::new(Initialization::Zero)
            .stopping_rule(StoppingRule::AbsoluteNorm)
            .tolerance(1e-6)
            .solve(&model)
            .unwrap();
        let trace = out.trace();
        assert_eq!(trace.len() as u32, out.iterations());
        assert!(trace.last().unwrap() <= 1e-6);
        // The norm decays overall (allow small non-monotonicity).
        assert!(trace.values()[0] > trace.last().unwrap());
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let model = SystemModel::table1_system(0.9).unwrap();
        let err = NashSolver::new(Initialization::Zero)
            .tolerance(1e-12)
            .max_iterations(2)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::DidNotConverge { iterations: 2, .. }
        ));
    }

    #[test]
    fn custom_initialization_works_and_checks_shape() {
        let model = small_model();
        let p = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let out = NashSolver::new(Initialization::Custom(p))
            .solve(&model)
            .unwrap();
        assert!(out.converged());
        // Wrong computer count: the error must report the computer
        // dimension (3 vs 2), not the (matching) user counts.
        let bad = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        let err = NashSolver::new(Initialization::Custom(bad))
            .solve(&model)
            .unwrap_err();
        assert_eq!(
            err,
            GameError::DimensionMismatch {
                expected: 3,
                actual: 2
            }
        );
        // Wrong user count is still caught and reported as such.
        let bad = StrategyProfile::replicated(Strategy::uniform(3), 4).unwrap();
        let err = NashSolver::new(Initialization::Custom(bad))
            .solve(&model)
            .unwrap_err();
        assert_eq!(
            err,
            GameError::DimensionMismatch {
                expected: 2,
                actual: 4
            }
        );
    }

    #[test]
    fn jacobi_diverges_beyond_two_users_here() {
        // A key ablation supporting the paper's round-robin design: with
        // simultaneous (Jacobi) updates all users best-respond to the
        // same snapshot and pile onto the same machines; on the Table-1
        // system this oscillates into saturation for m >= 3 while the
        // paper's Gauss-Seidel scheme converges for every m tested.
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 4, 0.6).unwrap();
        let err = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::Jacobi)
            .tolerance(1e-4)
            .max_iterations(2000)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(err, GameError::DidNotConverge { .. }));
        // Gauss-Seidel on the identical instance converges quickly.
        let ok = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        assert!(ok.converged());
    }

    #[test]
    fn jacobi_reaches_the_same_equilibrium_here() {
        let model = small_model();
        let gs = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        let jac = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::Jacobi)
            .tolerance(1e-10)
            .max_iterations(2000)
            .solve(&model)
            .unwrap();
        let dist = gs.profile().max_l1_distance(jac.profile()).unwrap();
        assert!(dist < 1e-4, "Jacobi and Gauss-Seidel disagree by {dist}");
    }

    #[test]
    fn single_user_equilibrium_is_its_optimum() {
        // With one user the Nash equilibrium is just the user's optimum.
        let model = SystemModel::new(vec![10.0, 20.0], vec![12.0]).unwrap();
        let out = nash_equilibrium(&model).unwrap();
        let rates = model.computer_rates();
        let flows: Vec<f64> = out
            .profile()
            .strategy(0)
            .fractions()
            .iter()
            .map(|s| s * 12.0)
            .collect();
        assert!(crate::best_reply::satisfies_kkt(rates, &flows, 1e-6));
    }

    #[test]
    fn random_permutation_order_reaches_the_same_equilibrium() {
        let model = small_model();
        let gs = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();
        for seed in [1u64, 42, 777] {
            let rp = NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::RandomPermutation(seed))
                .tolerance(1e-10)
                .solve(&model)
                .unwrap();
            let dist = gs.profile().max_l1_distance(rp.profile()).unwrap();
            assert!(dist < 1e-4, "seed {seed}: differs by {dist}");
        }
    }

    #[test]
    fn random_permutation_is_deterministic_per_seed() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let a = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::RandomPermutation(9))
            .solve(&model)
            .unwrap();
        let b = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::RandomPermutation(9))
            .solve(&model)
            .unwrap();
        assert_eq!(a.iterations(), b.iterations());
        assert_eq!(a.trace().values(), b.trace().values());
    }

    #[test]
    fn parallel_jacobi_sweep_is_bit_identical_to_sequential() {
        // Every Jacobi reply answers the frozen previous round, so the
        // fan-out must not change a single bit of the outcome no matter
        // how many workers compute it.
        let model = small_model();
        let reference = NashSolver::new(Initialization::Proportional)
            .update_order(UpdateOrder::Jacobi)
            .tolerance(1e-10)
            .max_iterations(2000)
            .solve(&model)
            .unwrap();
        for threads in [2, 3, 8] {
            let par = NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::Jacobi)
                .tolerance(1e-10)
                .max_iterations(2000)
                .threads(threads)
                .solve(&model)
                .unwrap();
            assert_eq!(
                par.iterations(),
                reference.iterations(),
                "{threads} threads"
            );
            for (a, b) in par.trace().values().iter().zip(reference.trace().values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads: norm differs");
            }
            for j in 0..model.num_users() {
                let pa = par.profile().strategy(j);
                let pb = reference.profile().strategy(j);
                for i in 0..model.num_computers() {
                    assert_eq!(
                        pa.fraction(i).to_bits(),
                        pb.fraction(i).to_bits(),
                        "{threads} threads: s[{j}][{i}] differs"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_jacobi_divergence_matches_sequential() {
        // The divergence ablation must be thread-count independent too.
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 4, 0.6).unwrap();
        for threads in [1, 8] {
            let err = NashSolver::new(Initialization::Proportional)
                .update_order(UpdateOrder::Jacobi)
                .tolerance(1e-4)
                .max_iterations(500)
                .threads(threads)
                .solve(&model)
                .unwrap_err();
            assert!(matches!(err, GameError::DidNotConverge { .. }));
        }
    }

    #[test]
    fn sampling_collector_does_not_perturb_the_solve() {
        use lb_telemetry::{MemoryCollector, SamplingCollector, SamplingConfig};

        let model = SystemModel::table1_system(0.6).unwrap();
        let plain = NashSolver::new(Initialization::Proportional)
            .solve(&model)
            .unwrap();
        // Aggressive 1/64 head sampling in front of the memory sink:
        // the solve must stay bit-identical (sampling only filters the
        // outbound event stream, never feeds back into the solver).
        let mem = Arc::new(MemoryCollector::default());
        let sampler: Arc<dyn Collector> = Arc::new(SamplingCollector::new(
            mem.clone(),
            SamplingConfig::new(0xBEEF, 1.0 / 64.0),
        ));
        let traced = NashSolver::new(Initialization::Proportional)
            .collector(sampler)
            .solve(&model)
            .unwrap();
        assert_eq!(traced.iterations(), plain.iterations());
        for (a, b) in traced.trace().values().iter().zip(plain.trace().values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Always-keep classes survive any rate, so the terminal event
        // and the accounting snapshot are still present in the log.
        assert_eq!(mem.count("solver.done"), 1);
        assert_eq!(mem.count("account.solver"), 1);
    }

    #[test]
    fn collector_sees_every_sweep_and_does_not_perturb_the_solve() {
        use lb_telemetry::{FieldValue, MemoryCollector};

        let model = SystemModel::table1_system(0.6).unwrap();
        let plain = NashSolver::new(Initialization::Proportional)
            .solve(&model)
            .unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let traced = NashSolver::new(Initialization::Proportional)
            .collector(mem.clone())
            .solve(&model)
            .unwrap();

        // Bit-identical outcome with the collector attached.
        assert_eq!(traced.iterations(), plain.iterations());
        for (a, b) in traced.trace().values().iter().zip(plain.trace().values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // One start, one sweep per iteration, one done, one accounting
        // snapshot whose counters match the solve's shape exactly: GS
        // does one best reply (= one water-fill) per user per sweep.
        assert_eq!(mem.count("solver.start"), 1);
        assert_eq!(mem.count("solver.sweep"), plain.iterations() as usize);
        assert_eq!(mem.count("solver.done"), 1);
        assert_eq!(mem.count("account.solver"), 1);
        let (_, acct) = mem
            .events()
            .into_iter()
            .find(|(name, _)| *name == "account.solver")
            .unwrap();
        let acct_u64 = |k: &str| match acct.iter().find(|(key, _)| *key == k).unwrap().1 {
            FieldValue::U64(v) => v,
            ref other => panic!("{k} field was {other:?}"),
        };
        let sweeps = u64::from(plain.iterations());
        let users = model.num_users() as u64;
        assert_eq!(acct_u64("sweeps"), sweeps);
        assert_eq!(acct_u64("best_replies"), sweeps * users);
        assert_eq!(acct_u64("water_fills"), sweeps * users);
        assert_eq!(acct_u64("refreshes"), sweeps + 1);

        // The sweep norms mirror the outcome's trace exactly.
        let events = mem.events();
        let norms: Vec<f64> = events
            .iter()
            .filter(|(name, _)| *name == "solver.sweep")
            .map(
                |(_, fields)| match fields.iter().find(|(k, _)| *k == "norm").unwrap().1 {
                    FieldValue::F64(v) => v,
                    ref other => panic!("norm field was {other:?}"),
                },
            )
            .collect();
        for (a, b) in norms.iter().zip(plain.trace().values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Sweep payloads carry sensible convergence internals.
        let (_, last_sweep) = events
            .iter()
            .rev()
            .find(|(name, _)| *name == "solver.sweep")
            .unwrap();
        let field = |k: &str| {
            last_sweep
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(field("converged"), FieldValue::Bool(true));
        match (field("wf_prefix_min"), field("wf_prefix_max")) {
            (FieldValue::U64(min), FieldValue::U64(max)) => {
                assert!(min >= 1 && max <= model.num_computers() as u64 && min <= max);
            }
            other => panic!("prefix fields were {other:?}"),
        }
        match field("refreshes") {
            FieldValue::U64(r) => assert_eq!(r, u64::from(plain.iterations()) + 1),
            other => panic!("refreshes field was {other:?}"),
        }
        match (field("max_d_delta"), field("norm")) {
            (FieldValue::F64(max_d), FieldValue::F64(norm)) => {
                assert!(max_d <= norm, "max delta {max_d} exceeds norm {norm}");
            }
            other => panic!("delta fields were {other:?}"),
        }
    }

    #[test]
    fn solver_spans_form_a_complete_three_level_tree() {
        use lb_telemetry::{FieldValue, MemoryCollector, SPAN_CLOSE, SPAN_OPEN};

        let model = SystemModel::table1_system(0.6).unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let outcome = NashSolver::new(Initialization::Proportional)
            .collector(mem.clone())
            .solve(&model)
            .unwrap();

        let events = mem.events();
        let field_u64 = |fields: &[lb_telemetry::Field], key: &str| -> Option<u64> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| match v {
                    FieldValue::U64(n) => *n,
                    other => panic!("field {key} was {other:?}"),
                })
        };
        let field_str = |fields: &[lb_telemetry::Field], key: &str| -> String {
            match &fields.iter().find(|(k, _)| *k == key).unwrap().1 {
                FieldValue::Str(s) => s.to_string(),
                other => panic!("field {key} was {other:?}"),
            }
        };

        // Every opened span closes.
        let opens: Vec<_> = events.iter().filter(|(n, _)| *n == SPAN_OPEN).collect();
        let closes = events.iter().filter(|(n, _)| *n == SPAN_CLOSE).count();
        assert_eq!(opens.len(), closes, "unbalanced span open/close");

        // Exactly one solve root, one sweep per iteration, and one
        // best_reply per (iteration, user) — all correctly parented.
        let iters = outcome.iterations() as usize;
        let m = model.num_users();
        let mut solve_id = None;
        let mut sweep_ids = std::collections::BTreeSet::new();
        let (mut sweeps, mut replies) = (0usize, 0usize);
        for (_, fields) in &opens {
            let id = field_u64(fields, "span").unwrap();
            let parent = field_u64(fields, "parent");
            match field_str(fields, "name").as_str() {
                "solver.solve" => {
                    assert!(solve_id.replace(id).is_none(), "two solve roots");
                    assert_eq!(parent, None);
                }
                "solver.sweep" => {
                    sweeps += 1;
                    sweep_ids.insert(id);
                    assert_eq!(parent, solve_id, "sweep not parented under solve");
                }
                "solver.best_reply" => {
                    replies += 1;
                    assert!(
                        sweep_ids.contains(&parent.unwrap()),
                        "best_reply not parented under a sweep"
                    );
                }
                other => panic!("unexpected span {other}"),
            }
        }
        assert_eq!(sweeps, iters);
        assert_eq!(replies, iters * m);
    }

    #[test]
    fn zero_iteration_budget_is_a_typed_error() {
        let model = small_model();
        let solver = NashSolver::new(Initialization::Proportional).max_iterations(0);
        assert_eq!(
            solver.solve(&model).unwrap_err(),
            GameError::ZeroIterationBudget
        );
        assert_eq!(
            solver.solve_partial(&model).unwrap_err(),
            GameError::ZeroIterationBudget
        );
    }

    #[test]
    fn solve_partial_keeps_the_truncated_outcome_and_its_certificates() {
        let model = SystemModel::table1_system(0.6).unwrap();
        // ε = 0 can never be met, so the budget is always exhausted.
        let out = NashSolver::new(Initialization::Proportional)
            .stopping_rule(StoppingRule::CertifiedGap { epsilon: 0.0 })
            .max_iterations(3)
            .solve_partial(&model)
            .unwrap();
        assert!(!out.converged());
        assert_eq!(out.iterations(), 3);
        assert_eq!(out.certificates().len(), 3);
        out.profile().check_stability(&model).unwrap();
        // The anytime guarantee improves with budget.
        let first = out.certificates()[0];
        let last = out.certified_gap().unwrap();
        assert!(last.relative <= first.relative, "{last:?} vs {first:?}");
        // `solve` on the same configuration refuses to hand back the
        // partial result.
        let err = NashSolver::new(Initialization::Proportional)
            .stopping_rule(StoppingRule::CertifiedGap { epsilon: 0.0 })
            .max_iterations(3)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::DidNotConverge { iterations: 3, .. }
        ));
    }

    #[test]
    fn certified_default_bounds_the_exact_gap() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let out = nash_equilibrium(&model).unwrap();
        let cert = out.certified_gap().expect("default rule certifies");
        assert!(cert.relative <= 1e-4, "accepted at {}", cert.relative);
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        // Soundness of the reported bound (tiny slack for the solver's
        // incremental-load drift relative to the exact recompute).
        assert!(
            cert.absolute + 1e-9 * (1.0 + gap) >= gap,
            "certificate {} below exact gap {gap}",
            cert.absolute
        );
    }

    #[test]
    fn absolute_norm_is_scale_dependent_and_certified_rule_is_not() {
        // The headline bugfix regression test. Rescaling μ, φ → c·μ, c·φ
        // divides every response time by c, so the paper's absolute rule
        // changes meaning with the units while the game itself (the
        // equilibrium strategies, the sweep dynamics) is scale-free.
        let base = SystemModel::table1_system(0.6).unwrap();
        let scale = |c: f64| {
            SystemModel::new(
                base.computer_rates().iter().map(|r| r * c).collect(),
                base.user_rates().iter().map(|r| r * c).collect(),
            )
            .unwrap()
        };
        let absolute = |m: &SystemModel, budget: u32| {
            NashSolver::new(Initialization::Zero)
                .stopping_rule(StoppingRule::AbsoluteNorm)
                .tolerance(1e-4)
                .max_iterations(budget)
                .solve(m)
        };
        let base_run = absolute(&base, 500).unwrap();

        // 100× *down*: response times grow 100×, the same ε demands a
        // 100× tighter relative accuracy, and the budget that was ample
        // on the base instance is exhausted on the rescaled one.
        let err = absolute(&scale(0.01), base_run.iterations()).unwrap_err();
        assert!(matches!(err, GameError::DidNotConverge { .. }));

        // 10⁴× *up*: response times shrink 10⁴×, the first sweeps
        // already move less than ε, and the rule "converges" almost
        // immediately onto a provably much worse profile.
        let vac = absolute(&scale(1e4), 500).unwrap();
        assert!(
            vac.iterations() < base_run.iterations(),
            "vacuous run took {} sweeps vs {}",
            vac.iterations(),
            base_run.iterations()
        );
        let vac_cert = crate::stopping::profile_certificate(&scale(1e4), vac.profile()).unwrap();
        let base_cert = crate::stopping::profile_certificate(&base, base_run.profile()).unwrap();
        assert!(
            vac_cert.relative > 10.0 * base_cert.relative,
            "vacuous relative gap {} vs honest {}",
            vac_cert.relative,
            base_cert.relative
        );

        // The certified rule is scale-invariant: the same sweep count at
        // every scale, and the accepted profiles carry the same relative
        // guarantee.
        let certified = |m: &SystemModel| {
            NashSolver::new(Initialization::Zero)
                .stopping_rule(StoppingRule::CertifiedGap { epsilon: 1e-4 })
                .solve(m)
                .unwrap()
        };
        let reference = certified(&base);
        for c in [0.01, 1e4] {
            let run = certified(&scale(c));
            assert_eq!(run.iterations(), reference.iterations(), "scale {c}");
            assert!(run.certified_gap().unwrap().relative <= 1e-4, "scale {c}");
        }
    }

    #[test]
    fn sweep_telemetry_carries_the_certificate() {
        use lb_telemetry::{FieldValue, MemoryCollector};

        let model = small_model();
        let mem = Arc::new(MemoryCollector::default());
        let out = NashSolver::new(Initialization::Proportional)
            .collector(mem.clone())
            .solve(&model)
            .unwrap();
        let events = mem.events();
        let field = |fields: &[lb_telemetry::Field], k: &str| {
            fields
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.clone())
        };
        let (_, start) = events
            .iter()
            .find(|(name, _)| *name == "solver.start")
            .unwrap();
        assert_eq!(
            field(start, "stopping"),
            Some(FieldValue::Str("certified_gap".into()))
        );
        let (_, last_sweep) = events
            .iter()
            .rev()
            .find(|(name, _)| *name == "solver.sweep")
            .unwrap();
        match field(last_sweep, "cert_rel") {
            Some(FieldValue::F64(rel)) => {
                let cert = out.certified_gap().unwrap();
                assert_eq!(rel.to_bits(), cert.relative.to_bits());
                assert!(rel <= 1e-4);
            }
            other => panic!("cert_rel field was {other:?}"),
        }
        let (_, done) = events
            .iter()
            .find(|(name, _)| *name == "solver.done")
            .unwrap();
        assert!(field(done, "cert_gap").is_some());
        // The repro rule emits no certificate fields at all.
        let mem = Arc::new(MemoryCollector::default());
        NashSolver::new(Initialization::Proportional)
            .stopping_rule(StoppingRule::AbsoluteNorm)
            .collector(mem.clone())
            .solve(&model)
            .unwrap();
        for (name, fields) in mem.events().iter() {
            if *name == "solver.sweep" {
                assert!(field(fields, "cert_rel").is_none());
            }
        }
    }

    #[test]
    fn many_users_converge_at_high_load() {
        // The paper observes convergence for up to 32 users; exercise 16
        // equal users at 80% utilization.
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 16, 0.8).unwrap();
        let out = nash_equilibrium(&model).unwrap();
        assert!(out.converged());
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        assert!(gap < 1e-2, "gap {gap}");
    }
}
