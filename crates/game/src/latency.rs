//! Generic queue latency functions.
//!
//! The paper's computers are M/M/1 queues, whose latency `1/(μ − λ)`
//! admits the closed-form water-filling best reply. The multicore
//! extension replaces computers with M/M/c pools, whose Erlang-C latency
//! has no such closed form — so the game layer needs latency as an
//! *interface*: convex, increasing, with a finite capacity. The numeric
//! best-reply solver in [`crate::gradient`] works against this trait.

use lb_queueing::Mmc;

/// Expected-response-time function of a single service facility.
///
/// Implementations must be convex and increasing on `[0, capacity)` and
/// return `+∞` at or beyond capacity — the properties the game theory
/// (existence/uniqueness of equilibria, Orda et al. 1993) relies on.
pub trait Latency {
    /// Expected response time at offered flow `lambda` (`+∞` if
    /// saturated).
    fn response_time(&self, lambda: f64) -> f64;

    /// Maximum sustainable flow (exclusive bound).
    fn capacity(&self) -> f64;
}

/// M/M/1 latency `1/(μ − λ)` — the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1Latency {
    /// Processing rate `μ`.
    pub mu: f64,
}

impl Latency for Mm1Latency {
    fn response_time(&self, lambda: f64) -> f64 {
        lb_queueing::mm1::response_time(lambda, self.mu)
    }

    fn capacity(&self) -> f64 {
        self.mu
    }
}

/// M/M/c latency (Erlang-C): a pool of `servers` cores of rate `mu`
/// behind one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcLatency {
    /// Per-core service rate.
    pub mu: f64,
    /// Number of cores.
    pub servers: u32,
}

impl Latency for MmcLatency {
    fn response_time(&self, lambda: f64) -> f64 {
        if lambda < 0.0 {
            return f64::INFINITY;
        }
        if lambda == 0.0 {
            return 1.0 / self.mu;
        }
        match Mmc::new(lambda, self.mu, self.servers) {
            Ok(q) => q.response_time(),
            Err(_) => f64::INFINITY,
        }
    }

    fn capacity(&self) -> f64 {
        self.mu * f64::from(self.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_latency_matches_queueing_crate() {
        let l = Mm1Latency { mu: 4.0 };
        let q = lb_queueing::Mm1::new(1.0, 4.0).unwrap();
        assert!((l.response_time(1.0) - q.response_time()).abs() < 1e-12);
        assert_eq!(l.capacity(), 4.0);
        assert!(l.response_time(4.0).is_infinite());
    }

    #[test]
    fn mmc_latency_matches_queueing_crate() {
        let l = MmcLatency {
            mu: 1.0,
            servers: 4,
        };
        let q = Mmc::new(2.0, 1.0, 4).unwrap();
        assert!((l.response_time(2.0) - q.response_time()).abs() < 1e-12);
        assert_eq!(l.capacity(), 4.0);
        assert!(l.response_time(4.0).is_infinite());
        assert!((l.response_time(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latencies_are_increasing() {
        let pools: Vec<Box<dyn Latency>> = vec![
            Box::new(Mm1Latency { mu: 5.0 }),
            Box::new(MmcLatency {
                mu: 1.0,
                servers: 5,
            }),
        ];
        for p in &pools {
            let mut prev = p.response_time(0.0);
            for k in 1..40 {
                let lambda = p.capacity() * f64::from(k) / 41.0;
                let t = p.response_time(lambda);
                assert!(t >= prev, "latency not increasing at {lambda}");
                prev = t;
            }
        }
    }

    #[test]
    fn latencies_are_convex_on_a_grid() {
        // Midpoint convexity check of x -> T(x) on a grid.
        let pools: Vec<Box<dyn Latency>> = vec![
            Box::new(Mm1Latency { mu: 5.0 }),
            Box::new(MmcLatency {
                mu: 1.0,
                servers: 8,
            }),
        ];
        for p in &pools {
            let cap = p.capacity();
            for k in 1..30 {
                let a = cap * f64::from(k) / 32.0;
                let b = cap * f64::from(k + 2) / 32.0;
                let mid = 0.5 * (a + b);
                assert!(
                    p.response_time(mid) <= 0.5 * (p.response_time(a) + p.response_time(b)) + 1e-12,
                    "convexity fails on [{a}, {b}]"
                );
            }
        }
    }

    #[test]
    fn pooled_cores_beat_split_cores_at_equal_load() {
        // Classic pooling: one M/M/4 of rate 1 beats four M/M/1 of rate 1
        // each taking a quarter of the flow.
        let pool = MmcLatency {
            mu: 1.0,
            servers: 4,
        };
        let single = Mm1Latency { mu: 1.0 };
        let total = 3.2;
        assert!(pool.response_time(total) < single.response_time(total / 4.0));
    }
}
