//! The load-balancing game over **multicore pools** (M/M/c computers) —
//! an extension of the paper's single-core model.
//!
//! Modern "computers" are pools of cores behind one run queue; the
//! M/M/1 latency becomes Erlang-C, for which no closed-form best reply
//! exists. This module runs the same greedy round-robin best-reply
//! dynamics as the paper's NASH algorithm, with the numeric
//! [`crate::gradient::minimize_general_split`] solver in place of the
//! OPTIMAL water-filling step. With every pool at `c = 1` the results
//! match the closed-form solver (verified by tests), certifying both
//! paths against each other.

use crate::error::GameError;
use crate::gradient::minimize_general_split;
use crate::latency::{Latency, MmcLatency};

/// A distributed system of M/M/c pools shared by selfish users.
///
/// # Examples
///
/// ```
/// use lb_game::multicore::PoolSystem;
/// // A quad-core pool and a fast single-core machine, two users.
/// let sys = PoolSystem::new(vec![(5.0, 4), (25.0, 1)], vec![12.0, 18.0]).unwrap();
/// let nash = sys.nash(1e-5, 300, 800).unwrap();
/// let d = sys.overall_time(&nash.flows);
/// assert!(d.is_finite() && d > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PoolSystem {
    pools: Vec<MmcLatency>,
    user_rates: Vec<f64>,
}

impl PoolSystem {
    /// Builds the system from `(per-core rate, core count)` pools and
    /// user arrival rates.
    ///
    /// # Errors
    ///
    /// * [`GameError::EmptyModel`] for empty pools/users.
    /// * [`GameError::InvalidRate`] for invalid rates or zero cores.
    /// * [`GameError::Overloaded`] when `Σφ >= Σ c·μ`.
    pub fn new(pools: Vec<(f64, u32)>, user_rates: Vec<f64>) -> Result<Self, GameError> {
        if pools.is_empty() {
            return Err(GameError::EmptyModel { what: "computers" });
        }
        if user_rates.is_empty() {
            return Err(GameError::EmptyModel { what: "users" });
        }
        let mut lat = Vec::with_capacity(pools.len());
        for (mu, servers) in pools {
            if !mu.is_finite() || mu <= 0.0 {
                return Err(GameError::InvalidRate {
                    name: "mu",
                    value: mu,
                });
            }
            if servers == 0 {
                return Err(GameError::InvalidRate {
                    name: "servers",
                    value: 0.0,
                });
            }
            lat.push(MmcLatency { mu, servers });
        }
        for &phi in &user_rates {
            if !phi.is_finite() || phi <= 0.0 {
                return Err(GameError::InvalidRate {
                    name: "phi",
                    value: phi,
                });
            }
        }
        let capacity: f64 = lat.iter().map(Latency::capacity).sum();
        let total: f64 = user_rates.iter().sum();
        if total >= capacity {
            return Err(GameError::overloaded(total, capacity));
        }
        Ok(Self {
            pools: lat,
            user_rates,
        })
    }

    /// Number of pools.
    pub fn num_pools(&self) -> usize {
        self.pools.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.user_rates.len()
    }

    /// The pools' latency models.
    pub fn pools(&self) -> &[MmcLatency] {
        &self.pools
    }

    /// User arrival rates.
    pub fn user_rates(&self) -> &[f64] {
        &self.user_rates
    }

    /// Total arrival rate Φ.
    pub fn total_arrival_rate(&self) -> f64 {
        self.user_rates.iter().sum()
    }

    /// Aggregate capacity `Σ c_i μ_i`.
    pub fn total_capacity(&self) -> f64 {
        self.pools.iter().map(Latency::capacity).sum()
    }

    /// User `j`'s expected response time under per-user flow matrix
    /// `flows` (rows users, columns pools).
    pub fn user_time(&self, flows: &[Vec<f64>], j: usize) -> f64 {
        let totals = self.pool_totals(flows);
        let phi = self.user_rates[j];
        flows[j]
            .iter()
            .zip(&totals)
            .zip(&self.pools)
            .filter(|((&x, _), _)| x > 0.0)
            .map(|((&x, &t), p)| x / phi * p.response_time(t))
            .sum()
    }

    /// System expected response time (job-averaged).
    pub fn overall_time(&self, flows: &[Vec<f64>]) -> f64 {
        let totals = self.pool_totals(flows);
        let phi = self.total_arrival_rate();
        totals
            .iter()
            .zip(&self.pools)
            .filter(|(&t, _)| t > 0.0)
            .map(|(&t, p)| t * p.response_time(t))
            .sum::<f64>()
            / phi
    }

    /// Total flow at each pool.
    pub fn pool_totals(&self, flows: &[Vec<f64>]) -> Vec<f64> {
        let n = self.pools.len();
        let mut totals = vec![0.0; n];
        for row in flows {
            for (t, &x) in totals.iter_mut().zip(row) {
                *t += x;
            }
        }
        totals
    }

    /// Runs greedy round-robin best replies to an (approximate) Nash
    /// equilibrium. `inner_iterations` bounds the numeric best-reply
    /// solver per update.
    ///
    /// # Errors
    ///
    /// [`GameError::DidNotConverge`] if the response-time norm stays above
    /// `tolerance`; infeasible best replies propagate.
    pub fn nash(
        &self,
        tolerance: f64,
        max_sweeps: u32,
        inner_iterations: u32,
    ) -> Result<PoolNashOutcome, GameError> {
        let m = self.num_users();
        let capacity = self.total_capacity();
        // Proportional (to capacity) start — the NASH_P analogue.
        let mut flows: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                self.pools
                    .iter()
                    .map(|p| self.user_rates[j] * p.capacity() / capacity)
                    .collect()
            })
            .collect();
        let mut prev_d: Vec<f64> = (0..m).map(|j| self.user_time(&flows, j)).collect();
        let refs: Vec<&dyn Latency> = self.pools.iter().map(|p| p as &dyn Latency).collect();

        for sweep in 0..max_sweeps {
            let mut norm = 0.0;
            for j in 0..m {
                let totals = self.pool_totals(&flows);
                let base: Vec<f64> = totals
                    .iter()
                    .zip(&flows[j])
                    .map(|(&t, &own)| t - own)
                    .collect();
                let reply =
                    minimize_general_split(&refs, &base, self.user_rates[j], inner_iterations)
                        .map_err(|e| match e {
                            GameError::InfeasibleBestReply {
                                available, demand, ..
                            } => GameError::InfeasibleBestReply {
                                user: j,
                                available,
                                demand,
                            },
                            other => other,
                        })?;
                flows[j] = reply;
                let d = self.user_time(&flows, j);
                norm += (d - prev_d[j]).abs();
                prev_d[j] = d;
            }
            if norm <= tolerance {
                return Ok(PoolNashOutcome {
                    flows,
                    sweeps: sweep + 1,
                    user_times: prev_d,
                });
            }
        }
        Err(GameError::DidNotConverge {
            iterations: max_sweeps,
            final_norm: f64::NAN,
        })
    }

    /// The social optimum for the pool system (one grand user routing Φ),
    /// returning aggregate flows per pool.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn social_optimum(&self, inner_iterations: u32) -> Result<Vec<f64>, GameError> {
        let refs: Vec<&dyn Latency> = self.pools.iter().map(|p| p as &dyn Latency).collect();
        let base = vec![0.0; self.pools.len()];
        minimize_general_split(&refs, &base, self.total_arrival_rate(), inner_iterations)
    }

    /// One **Jacobi** round: every user's numeric best reply to the
    /// frozen flow matrix `flows`, fanned out over up to `threads`
    /// workers. Each reply is a pure function of the snapshot, so the
    /// returned matrix is bit-identical for any thread count (the
    /// deterministic parallel analogue of one `nash` sweep; Jacobi
    /// rounds themselves need damping to converge for m ≥ 3, so this is
    /// offered as a building block and ablation probe, not a solver).
    ///
    /// # Errors
    ///
    /// [`GameError::InfeasibleBestReply`] (lowest failing user wins, as
    /// in the sequential loop); numeric solver failures propagate.
    pub fn jacobi_sweep(
        &self,
        flows: &[Vec<f64>],
        inner_iterations: u32,
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, GameError> {
        let m = self.num_users();
        let totals = self.pool_totals(flows);
        let reply_for = |j: usize| -> Result<Vec<f64>, GameError> {
            let refs: Vec<&dyn Latency> = self.pools.iter().map(|p| p as &dyn Latency).collect();
            let base: Vec<f64> = totals
                .iter()
                .zip(&flows[j])
                .map(|(&t, &own)| t - own)
                .collect();
            minimize_general_split(&refs, &base, self.user_rates[j], inner_iterations).map_err(
                |e| match e {
                    GameError::InfeasibleBestReply {
                        available, demand, ..
                    } => GameError::InfeasibleBestReply {
                        user: j,
                        available,
                        demand,
                    },
                    other => other,
                },
            )
        };
        if threads <= 1 || m <= 1 {
            return (0..m).map(reply_for).collect();
        }
        let chunk = m.div_ceil(threads.min(m));
        let mut next: Vec<Option<Result<Vec<f64>, GameError>>> = (0..m).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for (t, slots) in next.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let reply_for = &reply_for;
                handles.push(s.spawn(move |_| {
                    for (off, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(reply_for(start + off));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        next.into_iter()
            .map(|slot| slot.expect("every user's reply was computed"))
            .collect()
    }
}

/// Result of a converged pool-game best-reply iteration.
#[derive(Debug, Clone)]
pub struct PoolNashOutcome {
    /// Per-user per-pool flows at the equilibrium.
    pub flows: Vec<Vec<f64>>,
    /// Sweeps performed.
    pub sweeps: u32,
    /// Per-user expected response times.
    pub user_times: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use crate::nash::{Initialization, NashSolver};

    #[test]
    fn construction_is_validated() {
        assert!(PoolSystem::new(vec![], vec![1.0]).is_err());
        assert!(PoolSystem::new(vec![(1.0, 1)], vec![]).is_err());
        assert!(PoolSystem::new(vec![(0.0, 1)], vec![1.0]).is_err());
        assert!(PoolSystem::new(vec![(1.0, 0)], vec![1.0]).is_err());
        assert!(PoolSystem::new(vec![(1.0, 2)], vec![-1.0]).is_err());
        assert!(PoolSystem::new(vec![(1.0, 2)], vec![2.0]).is_err());
        let ok = PoolSystem::new(vec![(1.0, 2), (3.0, 1)], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.num_pools(), 2);
        assert_eq!(ok.num_users(), 2);
        assert_eq!(ok.total_capacity(), 5.0);
        assert_eq!(ok.total_arrival_rate(), 3.0);
    }

    #[test]
    fn single_core_pools_match_closed_form_nash() {
        // c = 1 pools are M/M/1: the numeric pool game must land on the
        // same equilibrium as the closed-form solver.
        let rates = [10.0, 20.0, 50.0];
        let users = [15.0, 25.0];
        let pools =
            PoolSystem::new(rates.iter().map(|&mu| (mu, 1)).collect(), users.to_vec()).unwrap();
        let pool_nash = pools.nash(1e-6, 400, 1500).unwrap();

        let model = SystemModel::new(rates.to_vec(), users.to_vec()).unwrap();
        let exact = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-10)
            .solve(&model)
            .unwrap();

        for (j, d_exact) in exact.user_times().iter().enumerate() {
            let d_pool = pool_nash.user_times[j];
            let rel = (d_pool - d_exact).abs() / d_exact;
            assert!(
                rel < 5e-3,
                "user {j}: pool {d_pool} vs exact {d_exact} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn flows_are_feasible_at_equilibrium() {
        let sys = PoolSystem::new(
            vec![(10.0, 6), (20.0, 5), (50.0, 3), (100.0, 2)],
            vec![100.0, 120.0, 86.0],
        )
        .unwrap();
        let out = sys.nash(1e-5, 400, 1200).unwrap();
        let totals = sys.pool_totals(&out.flows);
        for (t, p) in totals.iter().zip(sys.pools()) {
            assert!(*t < p.capacity(), "pool saturated: {t} vs {}", p.capacity());
        }
        for (j, row) in out.flows.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - sys.user_rates()[j]).abs() < 1e-6 * sys.user_rates()[j],
                "user {j} conservation"
            );
        }
    }

    #[test]
    fn equilibrium_is_approximately_stable() {
        // No user can improve materially by unilaterally re-solving.
        let sys = PoolSystem::new(vec![(5.0, 4), (20.0, 1), (10.0, 2)], vec![12.0, 18.0]).unwrap();
        let out = sys.nash(1e-6, 500, 1500).unwrap();
        let refs: Vec<&dyn Latency> = sys.pools().iter().map(|p| p as &dyn Latency).collect();
        let totals = sys.pool_totals(&out.flows);
        for j in 0..sys.num_users() {
            let base: Vec<f64> = totals
                .iter()
                .zip(&out.flows[j])
                .map(|(&t, &own)| t - own)
                .collect();
            let reply = minimize_general_split(&refs, &base, sys.user_rates()[j], 4000).unwrap();
            let mut improved = out.flows.clone();
            improved[j] = reply;
            let d_now = sys.user_time(&out.flows, j);
            let d_best = sys.user_time(&improved, j);
            assert!(
                d_now - d_best < 5e-3 * d_now,
                "user {j} can still improve: {d_now} -> {d_best}"
            );
        }
    }

    #[test]
    fn pooling_cores_improves_the_equilibrium() {
        // Same aggregate capacity: 8 singles vs 2 quad pools. The pooled
        // system's Nash equilibrium has a lower overall response time.
        let users = vec![6.0, 6.0];
        let split = PoolSystem::new(vec![(2.5, 1); 8], users.clone()).unwrap();
        let pooled = PoolSystem::new(vec![(2.5, 4); 2], users).unwrap();
        let d_split = split.overall_time(&split.nash(1e-6, 400, 1200).unwrap().flows);
        let d_pooled = pooled.overall_time(&pooled.nash(1e-6, 400, 1200).unwrap().flows);
        assert!(
            d_pooled < d_split,
            "pooled {d_pooled} should beat split {d_split}"
        );
    }

    #[test]
    fn jacobi_sweep_is_bit_identical_across_thread_counts() {
        let sys = PoolSystem::new(
            vec![(5.0, 4), (25.0, 1), (8.0, 2)],
            vec![9.0, 13.0, 7.0, 11.0],
        )
        .unwrap();
        // Start from the proportional matrix the solver itself uses.
        let capacity = sys.total_capacity();
        let flows: Vec<Vec<f64>> = (0..sys.num_users())
            .map(|j| {
                sys.pools()
                    .iter()
                    .map(|p| sys.user_rates()[j] * p.capacity() / capacity)
                    .collect()
            })
            .collect();
        let reference = sys.jacobi_sweep(&flows, 400, 1).unwrap();
        for threads in [2, 8] {
            let par = sys.jacobi_sweep(&flows, 400, threads).unwrap();
            for (j, (a_row, b_row)) in par.iter().zip(&reference).enumerate() {
                for (i, (a, b)) in a_row.iter().zip(b_row).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{threads} threads: flow[{j}][{i}] differs"
                    );
                }
            }
        }
    }

    #[test]
    fn social_optimum_lower_bounds_nash() {
        let sys = PoolSystem::new(vec![(10.0, 2), (30.0, 1), (5.0, 8)], vec![20.0, 25.0]).unwrap();
        let nash = sys.nash(1e-6, 400, 1200).unwrap();
        let opt_flows = sys.social_optimum(6000).unwrap();
        let d_opt: f64 = opt_flows
            .iter()
            .zip(sys.pools())
            .filter(|(&t, _)| t > 0.0)
            .map(|(&t, p)| t * p.response_time(t))
            .sum::<f64>()
            / sys.total_arrival_rate();
        let d_nash = sys.overall_time(&nash.flows);
        assert!(
            d_opt <= d_nash * (1.0 + 1e-3),
            "optimum {d_opt} vs nash {d_nash}"
        );
    }
}
