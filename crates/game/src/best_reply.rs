//! The OPTIMAL algorithm (paper §2, Theorem 2.1): a user's exact best
//! reply by square-root water-filling.
//!
//! Fixing the other users, user `j` sees *available* rates
//! `a_i = μ_i − Σ_{k≠j} s_ki φ_k` and solves
//!
//! ```text
//! min Σ_i x_i / (a_i − x_i)    s.t.  x_i >= 0,  Σ_i x_i = φ_j
//! ```
//!
//! (with `x_i = s_ji φ_j` the user's flow to computer `i`). The KKT
//! conditions give the closed form: sort computers by `a_i` descending,
//! keep the maximal prefix for which
//!
//! ```text
//! t = (Σ_{k<=c} a_k − φ_j) / (Σ_{k<=c} √a_k)      satisfies  t < √a_c ,
//! ```
//!
//! and set `x_i = a_i − t·√a_i` on the prefix, `0` elsewhere. The same
//! kernel with `a = μ` and demand `Φ` yields the *global* optimum used by
//! the GOS baseline (the social planner is a single grand user).

use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::{Strategy, StrategyProfile};

/// Relative headroom floor for assigned flows: `x_i` never comes closer
/// to its available rate than `SATURATION_GUARD · a_i`. Near saturation
/// the downstream `1/(a_i − x_i)` response-time terms explode to
/// huge-but-finite values that poison convergence norms (and a single
/// ulp of overshoot flips them to `∞` or negative); the guard bounds
/// them at `1/(GUARD · a_i)`. It binds only when the demand sits within
/// `GUARD` of the total available rate — a legitimately feasible split
/// keeps far more headroom (at ρ = 0.999 the equilibrium leaves ~6e-4
/// of each rate), so solutions away from the pathological sliver are
/// bit-for-bit unchanged.
pub const SATURATION_GUARD: f64 = 1e-9;

/// Available processing rate of each computer as seen by user `j`:
/// `a_i = μ_i − Σ_{k≠j} s_ki φ_k` (paper §2). Values can be ≤ 0 if other
/// users saturate a computer; the water-filling kernel skips those.
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] when profile and model disagree.
pub fn available_rates(
    model: &SystemModel,
    profile: &StrategyProfile,
    j: usize,
) -> Result<Vec<f64>, GameError> {
    let flows = profile.computer_flows(model)?;
    let own = profile.strategy(j);
    let phi_j = model.user_rate(j);
    Ok(model
        .computer_rates()
        .iter()
        .enumerate()
        .map(|(i, &mu)| mu - (flows[i] - own.fraction(i) * phi_j))
        .collect())
}

/// The water-filling kernel: splits a flow `demand` across servers of
/// (available) rates `rates`, minimizing `Σ x_i/(rates_i − x_i)`.
/// Non-positive rates are treated as unusable. Returns the per-server
/// flows `x_i` in the caller's order.
///
/// This is the body of the paper's OPTIMAL algorithm; `O(n log n)` from
/// the sort.
///
/// # Examples
///
/// ```
/// use lb_game::best_reply::water_fill_flows;
/// // Two servers, light demand: everything rides the fast one.
/// let flows = water_fill_flows(&[100.0, 1.0], 0.5).unwrap();
/// assert!(flows[0] > 0.0 && flows[1] == 0.0);
/// // Conservation always holds.
/// assert!((flows.iter().sum::<f64>() - 0.5).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// * [`GameError::InvalidRate`] for a non-positive/non-finite demand or a
///   non-finite rate.
/// * [`GameError::InfeasibleBestReply`] when `Σ max(rates_i, 0) <= demand`
///   (not enough capacity).
pub fn water_fill_flows(rates: &[f64], demand: f64) -> Result<Vec<f64>, GameError> {
    let mut scratch = WaterFillScratch::default();
    let mut flows = Vec::new();
    water_fill_flows_into(rates, demand, &mut scratch, &mut flows)?;
    Ok(flows)
}

/// Reusable scratch for [`water_fill_flows_into`]. Holding one of these
/// across calls keeps the sort-index buffer warm so the kernel performs
/// no heap allocations on the solver hot path.
#[derive(Debug, Default, Clone)]
pub struct WaterFillScratch {
    order: Vec<usize>,
}

/// Allocation-free form of [`water_fill_flows`]: writes the per-server
/// flows into `out` (cleared and resized to `rates.len()`), reusing the
/// sort-index buffer in `scratch`. Bit-identical to the allocating entry
/// point — same comparisons, same summation order.
///
/// # Errors
///
/// Same contract as [`water_fill_flows`].
pub fn water_fill_flows_into(
    rates: &[f64],
    demand: f64,
    scratch: &mut WaterFillScratch,
    out: &mut Vec<f64>,
) -> Result<(), GameError> {
    if !demand.is_finite() || demand <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "demand",
            value: demand,
        });
    }
    for &a in rates {
        if !a.is_finite() {
            return Err(GameError::InvalidRate {
                name: "available_rate",
                value: a,
            });
        }
    }
    // Usable computers, sorted by available rate descending (ties by index
    // for determinism) — step 1 of OPTIMAL.
    let order = &mut scratch.order;
    order.clear();
    order.extend((0..rates.len()).filter(|&i| rates[i] > 0.0));
    // `total_cmp` instead of `partial_cmp(..).expect(..)`: the rates are
    // validated finite above, but a panicking comparator would turn any
    // future validation gap into an abort mid-solve. A total order keeps
    // the sort well-defined no matter what reaches it.
    order.sort_by(|&p, &q| rates[q].total_cmp(&rates[p]).then(p.cmp(&q)));
    let total: f64 = order.iter().map(|&i| rates[i]).sum();
    if total <= demand {
        return Err(GameError::InfeasibleBestReply {
            user: usize::MAX,
            available: total,
            demand,
        });
    }

    // Steps 2–3: shrink the used prefix until t < sqrt(a_c).
    let mut c = order.len();
    let mut sum_a: f64 = total;
    let mut sum_sqrt: f64 = order.iter().map(|&i| rates[i].sqrt()).sum();
    let mut t = (sum_a - demand) / sum_sqrt;
    while c > 1 {
        let a_last = rates[order[c - 1]];
        if t < a_last.sqrt() {
            break;
        }
        sum_a -= a_last;
        sum_sqrt -= a_last.sqrt();
        c -= 1;
        t = (sum_a - demand) / sum_sqrt;
    }

    // Step 4: assign flows on the used prefix, capped at the saturation
    // guard so cancellation can never park a flow within an ulp of its
    // rate.
    let cap = |a: f64| a * (1.0 - SATURATION_GUARD);
    out.clear();
    out.resize(rates.len(), 0.0);
    let flows = out;
    for &i in &order[..c] {
        flows[i] = (rates[i] - t * rates[i].sqrt()).max(0.0).min(cap(rates[i]));
    }
    // In exact arithmetic Σ flows == demand, but the clamps above plus
    // floating-point cancellation can leave a drift of a few ulps of
    // Σ a_i. Fold the residual back in fastest-first (largest headroom:
    // a_i − x_i = t·√a_i is maximal there), still honoring the guard;
    // if the demand sits inside the guard sliver the leftover is
    // dropped — a ≤ GUARD·Σa conservation drift is the price of keeping
    // every 1/(a_i − x_i) bounded.
    let assigned: f64 = order[..c].iter().map(|&i| flows[i]).sum();
    let mut residual = demand - assigned;
    if residual < 0.0 {
        let fastest = order[0];
        flows[fastest] = (flows[fastest] + residual).max(0.0);
    } else if residual > 0.0 {
        for &i in &order[..c] {
            let room = (cap(rates[i]) - flows[i]).max(0.0);
            let take = residual.min(room);
            flows[i] += take;
            residual -= take;
            if residual <= 0.0 {
                break;
            }
        }
    }
    Ok(())
}

/// Computes user `j`'s best reply to the rest of `profile` — the OPTIMAL
/// algorithm. Returns the strategy (fractions) minimizing `D_j`.
///
/// # Examples
///
/// ```
/// use lb_game::best_reply::best_reply;
/// use lb_game::model::SystemModel;
/// use lb_game::strategy::{Strategy, StrategyProfile};
///
/// let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
/// let profile = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
/// let reply = best_reply(&model, &profile, 0).unwrap();
/// // The best reply favors the faster computer.
/// assert!(reply.fraction(1) > reply.fraction(0));
/// ```
///
/// # Errors
///
/// * [`GameError::DimensionMismatch`] on shape mismatch.
/// * [`GameError::InfeasibleBestReply`] when the other users leave user
///   `j` less available capacity than its arrival rate (cannot happen from
///   a stable profile, but can from an arbitrary one).
pub fn best_reply(
    model: &SystemModel,
    profile: &StrategyProfile,
    j: usize,
) -> Result<Strategy, GameError> {
    let rates = available_rates(model, profile, j)?;
    let phi_j = model.user_rate(j);
    let flows = water_fill_flows(&rates, phi_j).map_err(|e| match e {
        GameError::InfeasibleBestReply {
            available, demand, ..
        } => GameError::InfeasibleBestReply {
            user: j,
            available,
            demand,
        },
        other => other,
    })?;
    Strategy::new(flows.iter().map(|x| x / phi_j).collect())
}

/// Expected response time of a flow split `flows` against (available)
/// rates `rates`: `(1/demand) Σ x_i/(a_i − x_i)`, `+∞` if any used server
/// is saturated.
pub fn split_cost(rates: &[f64], flows: &[f64]) -> f64 {
    let demand: f64 = flows.iter().sum();
    if demand == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (&x, &a) in flows.iter().zip(rates) {
        if x > 0.0 {
            if x >= a {
                return f64::INFINITY;
            }
            acc += x / (a - x);
        }
    }
    acc / demand
}

/// Verifies the KKT optimality conditions of a water-filling solution:
/// all used servers share the same marginal cost `a_i/(a_i − x_i)²`, and
/// every unused server's marginal at zero (`1/a_i`) is no better. Used by
/// tests and the ε-Nash checker.
pub fn satisfies_kkt(rates: &[f64], flows: &[f64], rel_tol: f64) -> bool {
    let mut lambda: Option<f64> = None;
    // Common multiplier from the used servers.
    for (&x, &a) in flows.iter().zip(rates) {
        if x > 0.0 {
            if a <= x {
                return false;
            }
            let marginal = a / ((a - x) * (a - x));
            match lambda {
                None => lambda = Some(marginal),
                Some(l) => {
                    if (marginal - l).abs() > rel_tol * l.max(1.0) {
                        return false;
                    }
                }
            }
        }
    }
    let Some(l) = lambda else {
        return flows.iter().all(|&x| x == 0.0);
    };
    // Unused servers must not offer a strictly better marginal.
    for (&x, &a) in flows.iter().zip(rates) {
        if x == 0.0 && a > 0.0 {
            let marginal_at_zero = 1.0 / a;
            if marginal_at_zero < l * (1.0 - rel_tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_computer_takes_everything() {
        let flows = water_fill_flows(&[10.0], 4.0).unwrap();
        assert!((flows[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_computers_split_evenly() {
        let flows = water_fill_flows(&[10.0, 10.0, 10.0, 10.0], 8.0).unwrap();
        for &x in &flows {
            assert!((x - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn light_demand_uses_only_fast_computers() {
        // With tiny demand, slow computers should get nothing: their pure
        // service time is worse than the queueing at the fast one.
        let flows = water_fill_flows(&[100.0, 1.0], 0.5).unwrap();
        assert!(flows[0] > 0.0);
        assert_eq!(flows[1], 0.0);
    }

    #[test]
    fn heavy_demand_spills_to_slow_computers() {
        let flows = water_fill_flows(&[100.0, 1.0], 100.4).unwrap();
        assert!(flows[1] > 0.0);
        let sum: f64 = flows.iter().sum();
        assert!((sum - 100.4).abs() < 1e-9);
    }

    #[test]
    fn conservation_and_stability_hold() {
        let rates = [10.0, 20.0, 50.0, 100.0];
        for &d in &[1.0, 30.0, 90.0, 179.0] {
            let flows = water_fill_flows(&rates, d).unwrap();
            let sum: f64 = flows.iter().sum();
            assert!((sum - d).abs() < 1e-9, "demand {d}");
            for (&x, &a) in flows.iter().zip(&rates) {
                assert!(x >= 0.0 && x < a, "demand {d}: flow {x} vs rate {a}");
            }
            assert!(
                satisfies_kkt(&rates, &flows, 1e-6),
                "KKT fails at demand {d}"
            );
        }
    }

    #[test]
    fn order_independence() {
        // The solution must not depend on input ordering.
        let a = water_fill_flows(&[10.0, 20.0, 50.0], 40.0).unwrap();
        let b = water_fill_flows(&[50.0, 10.0, 20.0], 40.0).unwrap();
        assert!((a[0] - b[1]).abs() < 1e-12);
        assert!((a[1] - b[2]).abs() < 1e-12);
        assert!((a[2] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn closed_form_two_servers() {
        // Two servers, both used: x_i = a_i - t sqrt(a_i),
        // t = (a1 + a2 - d)/(sqrt(a1) + sqrt(a2)).
        let (a1, a2, d) = (9.0_f64, 4.0_f64, 7.0);
        let t = (a1 + a2 - d) / (a1.sqrt() + a2.sqrt());
        let flows = water_fill_flows(&[a1, a2], d).unwrap();
        assert!((flows[0] - (a1 - t * a1.sqrt())).abs() < 1e-12);
        assert!((flows[1] - (a2 - t * a2.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn beats_naive_splits() {
        // Optimality sanity: water-filling is no worse than proportional
        // or equal splits across a range of demands.
        let rates = [7.0, 13.0, 29.0, 61.0];
        let total: f64 = rates.iter().sum();
        for &d in &[5.0, 25.0, 60.0, 100.0] {
            let opt = water_fill_flows(&rates, d).unwrap();
            let c_opt = split_cost(&rates, &opt);
            let prop: Vec<f64> = rates.iter().map(|a| d * a / total).collect();
            let equal: Vec<f64> = rates.iter().map(|_| d / 4.0).collect();
            assert!(c_opt <= split_cost(&rates, &prop) + 1e-12);
            assert!(c_opt <= split_cost(&rates, &equal) + 1e-12);
        }
    }

    #[test]
    fn infeasible_demand_is_rejected() {
        assert!(matches!(
            water_fill_flows(&[1.0, 2.0], 3.0),
            Err(GameError::InfeasibleBestReply { .. })
        ));
        assert!(matches!(
            water_fill_flows(&[1.0, 2.0], 5.0),
            Err(GameError::InfeasibleBestReply { .. })
        ));
        assert!(water_fill_flows(&[1.0, 2.0], 2.999).is_ok());
    }

    #[test]
    fn bad_demand_and_rates_are_rejected() {
        assert!(water_fill_flows(&[1.0], 0.0).is_err());
        assert!(water_fill_flows(&[1.0], -1.0).is_err());
        assert!(water_fill_flows(&[1.0], f64::NAN).is_err());
        assert!(water_fill_flows(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn nonpositive_rates_are_skipped() {
        let flows = water_fill_flows(&[10.0, -5.0, 0.0, 10.0], 4.0).unwrap();
        assert_eq!(flows[1], 0.0);
        assert_eq!(flows[2], 0.0);
        assert!((flows[0] - 2.0).abs() < 1e-12);
        assert!((flows[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn available_rates_subtract_other_users_only() {
        let model = SystemModel::new(vec![10.0, 10.0], vec![4.0, 2.0]).unwrap();
        let profile = StrategyProfile::new(vec![
            Strategy::new(vec![0.5, 0.5]).unwrap(),
            Strategy::new(vec![1.0, 0.0]).unwrap(),
        ])
        .unwrap();
        // User 0 sees mu minus user 1's flow: [10-2, 10-0].
        let a0 = available_rates(&model, &profile, 0).unwrap();
        assert!((a0[0] - 8.0).abs() < 1e-12);
        assert!((a0[1] - 10.0).abs() < 1e-12);
        // User 1 sees mu minus user 0's flow: [10-2, 10-2].
        let a1 = available_rates(&model, &profile, 1).unwrap();
        assert!((a1[0] - 8.0).abs() < 1e-12);
        assert!((a1[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn best_reply_is_feasible_and_kkt_optimal() {
        let model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![20.0, 30.0]).unwrap();
        let profile = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        for j in 0..2 {
            let br = best_reply(&model, &profile, j).unwrap();
            let sum: f64 = br.fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            let rates = available_rates(&model, &profile, j).unwrap();
            let flows: Vec<f64> = br
                .fractions()
                .iter()
                .map(|s| s * model.user_rate(j))
                .collect();
            assert!(satisfies_kkt(&rates, &flows, 1e-6));
        }
    }

    #[test]
    fn best_reply_improves_cost() {
        use crate::response::user_response_time;
        let model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![20.0, 30.0]).unwrap();
        let mut profile = StrategyProfile::replicated(Strategy::uniform(3), 2).unwrap();
        let before = user_response_time(&model, &profile, 0).unwrap();
        let br = best_reply(&model, &profile, 0).unwrap();
        profile.set_strategy(0, br).unwrap();
        let after = user_response_time(&model, &profile, 0).unwrap();
        assert!(after <= before + 1e-12, "best reply must not worsen cost");
        assert!(after < before, "uniform split is not optimal here");
    }

    #[test]
    fn infeasible_best_reply_names_user() {
        // User 1 saturates both computers so user 0 has nothing left.
        let model = SystemModel::new(vec![5.0, 5.0], vec![4.0, 5.9]).unwrap();
        let profile = StrategyProfile::new(vec![
            Strategy::uniform(2),
            Strategy::new(vec![0.85, 0.15]).unwrap(),
        ])
        .unwrap();
        // User 1 puts 5.015 on computer 0 (rate 5): a_0 < 0 for user 0,
        // leaving only computer 1 with a_1 = 5 - 0.885 ~ 4.1 >= 4... make
        // it tighter: demand 4 vs available ~4.115 is feasible, so drive
        // user 1 harder.
        let mut profile = profile;
        profile
            .set_strategy(1, Strategy::new(vec![0.5, 0.5]).unwrap())
            .unwrap();
        // a for user 0 = [5 - 2.95, 5 - 2.95] = [2.05, 2.05]; total 4.1
        // barely exceeds 4 -> feasible.
        assert!(best_reply(&model, &profile, 0).is_ok());
        // Now rates [4.9, 1.0], user1 = 4.8 spread evenly saturates.
        let model = SystemModel::new(vec![3.0, 3.0], vec![4.0, 1.9]).unwrap();
        let profile =
            StrategyProfile::new(vec![Strategy::uniform(2), Strategy::uniform(2)]).unwrap();
        // a for user 0 = [3-0.95, 3-0.95] = [2.05, 2.05], total 4.1 > 4 ok;
        // verify the error path with a direct kernel call instead.
        assert!(best_reply(&model, &profile, 0).is_ok());
        match water_fill_flows(&[1.0, 1.5], 4.0) {
            Err(GameError::InfeasibleBestReply {
                available, demand, ..
            }) => {
                assert!((available - 2.5).abs() < 1e-12);
                assert_eq!(demand, 4.0);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn near_saturation_demand_never_saturates_a_server() {
        // Demand a few ulps below total capacity: the prefix formula
        // yields t ≈ 0 and the residual fold-in used to be able to push
        // the fastest server to (or past) its rate, making 1/(a − x)
        // infinite or negative. The guard keeps every flow strictly
        // inside its rate and the split cost finite.
        let rates = [10.0, 20.0, 50.0];
        let total: f64 = rates.iter().sum();
        for &demand in &[
            total * (1.0 - 1e-15),
            total * (1.0 - 1e-12),
            total - f64::EPSILON * total,
        ] {
            let flows = water_fill_flows(&rates, demand).unwrap();
            for (&x, &a) in flows.iter().zip(&rates) {
                assert!(x >= 0.0, "negative flow {x}");
                assert!(x < a, "saturating flow {x} on rate {a}");
                assert!(
                    a - x >= 0.5 * SATURATION_GUARD * a,
                    "headroom {:.3e} below guard on rate {a}",
                    a - x
                );
            }
            let cost = split_cost(&rates, &flows);
            assert!(cost.is_finite(), "infinite cost at demand {demand}");
            // Conservation drift stays within the guard sliver.
            let sum: f64 = flows.iter().sum();
            assert!(
                (sum - demand).abs() <= SATURATION_GUARD * total + 1e-9,
                "drift {:.3e}",
                (sum - demand).abs()
            );
        }
    }

    #[test]
    fn rho_0999_equilibrium_stays_finite_and_converges() {
        // Regression: at 99.9% utilization the per-sweep best replies
        // walk close to saturation; the guard must keep response times
        // finite and must not perturb the equilibrium itself (its
        // legitimate headroom is ~6e-4 of each rate, far outside the
        // guard sliver).
        use crate::model::SystemModel;
        use crate::nash::{Initialization, NashSolver};
        use crate::response::user_response_time;
        let model = SystemModel::table1_system(0.999).unwrap();
        let outcome = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-6)
            .max_iterations(20_000)
            .solve(&model)
            .unwrap();
        assert!(outcome.converged());
        let profile = outcome.profile();
        for j in 0..model.num_users() {
            let d = user_response_time(&model, profile, j).unwrap();
            assert!(d.is_finite() && d > 0.0, "user {j} response {d}");
        }
    }

    #[test]
    fn scratch_variant_is_bit_identical_and_reusable() {
        let mut scratch = WaterFillScratch::default();
        let mut out = Vec::new();
        // Reuse the same scratch and output buffer across differently
        // shaped calls; every result must match the allocating kernel
        // bit for bit.
        let cases: &[(&[f64], f64)] = &[
            (&[10.0, 20.0, 50.0], 40.0),
            (&[100.0, 1.0], 0.5),
            (&[10.0, -5.0, 0.0, 10.0], 4.0),
            (&[7.0, 13.0, 29.0, 61.0, 3.0, 91.0], 150.0),
            (&[10.0], 4.0),
        ];
        for &(rates, demand) in cases {
            let fresh = water_fill_flows(rates, demand).unwrap();
            water_fill_flows_into(rates, demand, &mut scratch, &mut out).unwrap();
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "rates {rates:?} demand {demand}");
            }
        }
        // Errors propagate identically too.
        assert!(water_fill_flows_into(&[1.0, 2.0], 3.0, &mut scratch, &mut out).is_err());
        assert!(water_fill_flows_into(&[1.0], f64::NAN, &mut scratch, &mut out).is_err());
    }

    #[test]
    fn kkt_rejects_bad_splits() {
        let rates = [10.0, 10.0];
        // Lopsided split of demand 8 on identical servers is not optimal.
        assert!(!satisfies_kkt(&rates, &[7.0, 1.0], 1e-6));
        // Zero vector trivially satisfies (no used servers).
        assert!(satisfies_kkt(&rates, &[0.0, 0.0], 1e-6));
        // Saturated used server fails.
        assert!(!satisfies_kkt(&rates, &[10.0, 0.0], 1e-6));
    }
}
