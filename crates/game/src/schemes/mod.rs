//! The static load-balancing schemes compared in the paper (§4.2).
//!
//! All schemes produce a [`StrategyProfile`] for a [`SystemModel`] behind
//! the common [`LoadBalancingScheme`] trait:
//!
//! * [`ProportionalScheme`] (PS, Chow & Kohler 1979) — allocate in
//!   proportion to processing rates; perfectly fair, load-oblivious.
//! * [`GlobalOptimalScheme`] (GOS, Kim & Kameda 1992) — minimize the
//!   system-wide expected response time; socially optimal, unfair.
//! * [`IndividualOptimalScheme`] (IOS, Kameda et al. 1997) — the Wardrop
//!   equilibrium where each *job* individually optimizes; fair but
//!   inefficient at moderate loads.
//! * [`NashScheme`] — the paper's contribution: the Nash equilibrium
//!   among *users*, computed by the NASH best-reply algorithm.

mod global_optimal;
mod individual_optimal;
mod proportional;
mod stackelberg;

pub use global_optimal::{Decomposition, GlobalOptimalScheme};
pub use individual_optimal::{wardrop_flows, wardrop_iterative, IndividualOptimalScheme};
pub use proportional::ProportionalScheme;
pub use stackelberg::StackelbergScheme;

use crate::error::GameError;
use crate::model::SystemModel;
use crate::nash::{Initialization, NashSolver};
use crate::strategy::StrategyProfile;

/// A static load-balancing scheme: a rule mapping a system model to a
/// strategy profile.
pub trait LoadBalancingScheme {
    /// Short scheme name as used in the paper's figures (e.g. `"NASH"`).
    fn name(&self) -> &'static str;

    /// Computes the scheme's strategy profile for the model.
    ///
    /// # Errors
    ///
    /// Scheme-specific; all return [`GameError`].
    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError>;
}

/// The paper's NASH scheme as a [`LoadBalancingScheme`], using the NASH_P
/// initialization by default.
#[derive(Debug, Clone)]
pub struct NashScheme {
    solver: NashSolver,
}

impl NashScheme {
    /// NASH with a custom solver configuration.
    pub fn with_solver(solver: NashSolver) -> Self {
        Self { solver }
    }
}

impl Default for NashScheme {
    fn default() -> Self {
        Self {
            solver: NashSolver::new(Initialization::Proportional),
        }
    }
}

impl LoadBalancingScheme for NashScheme {
    fn name(&self) -> &'static str {
        "NASH"
    }

    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        Ok(self.solver.solve(model)?.into_profile())
    }
}

/// Every scheme the paper compares, in its plotting order, with GOS using
/// the paper-like sequential decomposition.
pub fn paper_schemes() -> Vec<Box<dyn LoadBalancingScheme>> {
    vec![
        Box::new(NashScheme::default()),
        Box::new(GlobalOptimalScheme::default()),
        Box::new(IndividualOptimalScheme),
        Box::new(ProportionalScheme),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::overall_response_time;

    #[test]
    fn all_schemes_produce_feasible_profiles() {
        let model = SystemModel::table1_system(0.6).unwrap();
        for scheme in paper_schemes() {
            let p = scheme
                .compute(&model)
                .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.name()));
            p.check_stability(&model)
                .unwrap_or_else(|e| panic!("{} unstable: {e}", scheme.name()));
            assert_eq!(p.num_users(), 10);
            assert_eq!(p.num_computers(), 16);
        }
    }

    #[test]
    fn scheme_names_match_paper() {
        let names: Vec<&str> = paper_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["NASH", "GOS", "IOS", "PS"]);
    }

    #[test]
    fn gos_minimizes_overall_time() {
        let model = SystemModel::table1_system(0.5).unwrap();
        let schemes = paper_schemes();
        let gos = schemes[1].compute(&model).unwrap();
        let d_gos = overall_response_time(&model, &gos).unwrap();
        for scheme in &schemes {
            let p = scheme.compute(&model).unwrap();
            let d = overall_response_time(&model, &p).unwrap();
            assert!(
                d_gos <= d + 1e-9,
                "{} beats GOS: {d} < {d_gos}",
                scheme.name()
            );
        }
    }
}
