//! The Proportional Scheme (PS) baseline — Chow & Kohler 1979.
//!
//! Every user allocates `s_ji = μ_i / Σ_k μ_k`. "This allocation seems to
//! be a natural choice but it may not minimize the user's expected
//! response time" (§4.2): it equalizes computer *utilizations*, which at
//! non-trivial load overloads slow computers in the response-time sense.
//! Its fairness index is always exactly 1 (all users see identical mixes).

use super::LoadBalancingScheme;
use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::{Strategy, StrategyProfile};

/// The PS baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalScheme;

impl ProportionalScheme {
    /// The single proportional strategy `s_i = μ_i / Σ μ_k` every user
    /// plays.
    ///
    /// # Errors
    ///
    /// Propagates strategy-construction failures (cannot occur for a valid
    /// model).
    pub fn strategy(model: &SystemModel) -> Result<Strategy, GameError> {
        let total: f64 = model.computer_rates().iter().sum();
        Strategy::new(model.computer_rates().iter().map(|mu| mu / total).collect())
    }
}

impl LoadBalancingScheme for ProportionalScheme {
    fn name(&self) -> &'static str {
        "PS"
    }

    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        StrategyProfile::replicated(Self::strategy(model)?, model.num_users())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::user_response_times;
    use lb_stats::jain_index;

    #[test]
    fn fractions_are_proportional() {
        let model = SystemModel::new(vec![10.0, 30.0], vec![5.0]).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        assert!((p.strategy(0).fraction(0) - 0.25).abs() < 1e-12);
        assert!((p.strategy(0).fraction(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_users_play_the_same_strategy() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        for j in 1..p.num_users() {
            assert_eq!(p.strategy(j), p.strategy(0));
        }
    }

    #[test]
    fn utilizations_are_equalized() {
        let model = SystemModel::table1_system(0.7).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        let flows = p.computer_flows(&model).unwrap();
        for (f, mu) in flows.iter().zip(model.computer_rates()) {
            assert!((f / mu - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    fn fairness_index_is_exactly_one() {
        // The paper: "for this scheme the fairness index is always 1".
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        let d = user_response_times(&model, &p).unwrap();
        let idx = jain_index(&d).unwrap();
        assert!((idx - 1.0).abs() < 1e-12);
    }
}
