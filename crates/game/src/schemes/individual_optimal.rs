//! The Individual Optimal Scheme (IOS) baseline — the Wardrop equilibrium
//! (Kameda, Li, Kim & Zhang 1997).
//!
//! Each *job* optimizes its own response time: at equilibrium every used
//! computer has the same expected response time and no unused computer
//! would be faster — the infinitesimal-player limit of the paper's game.
//! For parallel M/M/1 queues the equilibrium has a closed form: with
//! computers sorted by rate descending and `c` the used count,
//!
//! ```text
//! 1/τ = (Σ_{k<=c} μ_k − Φ) / c ,      λ_i = μ_i − 1/τ  (i <= c)
//! ```
//!
//! where `c` is the largest prefix keeping every `λ_i > 0`. Every user
//! plays `s_ji = λ_i / Φ`, so IOS is perfectly fair — the property the
//! paper highlights ("the advantage of this scheme is that it provides a
//! fair allocation"). The original IOS used an inefficient iterative
//! procedure; [`wardrop_iterative`] implements a flow-deviation variant
//! for cross-checking the closed form (DESIGN.md substitution #4).

use super::LoadBalancingScheme;
use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::{Strategy, StrategyProfile};

/// The IOS baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndividualOptimalScheme;

/// Closed-form Wardrop-equilibrium aggregate flows for parallel M/M/1
/// computers with rates `mu` and total demand `phi`.
///
/// # Examples
///
/// ```
/// use lb_game::schemes::wardrop_flows;
/// let flows = wardrop_flows(&[4.0, 8.0], 6.0).unwrap();
/// // Used computers feel identical response times.
/// let t0 = 1.0 / (4.0 - flows[0]);
/// let t1 = 1.0 / (8.0 - flows[1]);
/// assert!((t0 - t1).abs() < 1e-9);
/// ```
///
/// # Errors
///
/// [`GameError::InvalidRate`] for a non-positive demand;
/// [`GameError::Overloaded`] when `phi >= Σ μ`.
pub fn wardrop_flows(mu: &[f64], phi: f64) -> Result<Vec<f64>, GameError> {
    if !phi.is_finite() || phi <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "phi",
            value: phi,
        });
    }
    let total: f64 = mu.iter().sum();
    if phi >= total {
        return Err(GameError::overloaded(phi, total));
    }
    let mut order: Vec<usize> = (0..mu.len()).collect();
    order.sort_by(|&p, &q| mu[q].partial_cmp(&mu[p]).expect("finite").then(p.cmp(&q)));

    // Shrink the used prefix until every used computer keeps positive flow.
    let mut c = order.len();
    let mut prefix_sum: f64 = total;
    loop {
        let residual = (prefix_sum - phi) / c as f64; // = 1/tau
        let mu_last = mu[order[c - 1]];
        if mu_last > residual || c == 1 {
            let mut flows = vec![0.0; mu.len()];
            for &i in &order[..c] {
                flows[i] = (mu[i] - residual).max(0.0);
            }
            return Ok(flows);
        }
        prefix_sum -= mu_last;
        c -= 1;
    }
}

/// Iterative computation of the Wardrop equilibrium by bisection on the
/// common response time τ: for a candidate τ, the only flows compatible
/// with "every used computer feels exactly τ" are
/// `λ_i(τ) = max(0, μ_i − 1/τ)`, whose total is increasing in τ; bisect
/// until the total meets `phi`. A genuinely different method from the
/// sort-based closed form, used to cross-check it (and standing in for
/// the "inefficient iterative procedure" the paper attributes to the
/// original IOS).
///
/// # Errors
///
/// As for [`wardrop_flows`], plus [`GameError::DidNotConverge`] if the
/// conservation residual is not within `tol · phi` after `max_iters`
/// bisection steps.
pub fn wardrop_iterative(
    mu: &[f64],
    phi: f64,
    tol: f64,
    max_iters: u32,
) -> Result<Vec<f64>, GameError> {
    if !phi.is_finite() || phi <= 0.0 {
        return Err(GameError::InvalidRate {
            name: "phi",
            value: phi,
        });
    }
    let total: f64 = mu.iter().sum();
    if phi >= total {
        return Err(GameError::overloaded(phi, total));
    }
    let flows_at =
        |tau: f64| -> Vec<f64> { mu.iter().map(|&m| (m - 1.0 / tau).max(0.0)).collect() };
    let total_at = |tau: f64| -> f64 { flows_at(tau).iter().sum() };

    // Bracket tau: at tau = 1/mu_max the total is 0 < phi; grow the upper
    // end until the total exceeds phi (exists because total -> sum(mu)).
    let mu_max = mu.iter().cloned().fold(0.0, f64::max);
    let mut lo = 1.0 / mu_max;
    let mut hi = 2.0 * lo;
    while total_at(hi) < phi {
        hi *= 2.0;
    }
    for _ in 0..max_iters {
        let mid = 0.5 * (lo + hi);
        let t = total_at(mid);
        if (t - phi).abs() <= tol * phi {
            // Rescale the used flows so conservation is exact.
            let mut flows = flows_at(mid);
            let sum: f64 = flows.iter().sum();
            if sum > 0.0 {
                for f in &mut flows {
                    *f *= phi / sum;
                }
            }
            return Ok(flows);
        }
        if t < phi {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Err(GameError::DidNotConverge {
        iterations: max_iters,
        final_norm: (total_at(0.5 * (lo + hi)) - phi).abs(),
    })
}

impl LoadBalancingScheme for IndividualOptimalScheme {
    fn name(&self) -> &'static str {
        "IOS"
    }

    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        let flows = wardrop_flows(model.computer_rates(), model.total_arrival_rate())?;
        let phi = model.total_arrival_rate();
        let strategy = Strategy::new(flows.iter().map(|l| l / phi).collect())?;
        StrategyProfile::replicated(strategy, model.num_users())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::user_response_times;
    use lb_stats::jain_index;

    #[test]
    fn used_computers_have_equal_response_times() {
        let mu = SystemModel::table1_rates();
        let phi = 0.6 * 510.0;
        let flows = wardrop_flows(&mu, phi).unwrap();
        let times: Vec<f64> = flows
            .iter()
            .zip(&mu)
            .filter(|(&l, _)| l > 0.0)
            .map(|(&l, &m)| 1.0 / (m - l))
            .collect();
        assert!(!times.is_empty());
        let t0 = times[0];
        for &t in &times {
            assert!((t - t0).abs() < 1e-9, "unequal used times: {t} vs {t0}");
        }
        // Wardrop condition for unused computers: joining them is no better.
        for (&l, &m) in flows.iter().zip(&mu) {
            if l == 0.0 {
                assert!(1.0 / m >= t0 - 1e-9);
            }
        }
    }

    #[test]
    fn conservation_and_positivity() {
        let mu = [10.0, 20.0, 50.0, 100.0];
        for &phi in &[1.0, 40.0, 120.0, 179.0] {
            let flows = wardrop_flows(&mu, phi).unwrap();
            let sum: f64 = flows.iter().sum();
            assert!((sum - phi).abs() < 1e-9);
            for (&l, &m) in flows.iter().zip(&mu) {
                assert!(l >= 0.0 && l < m);
            }
        }
    }

    #[test]
    fn light_load_routes_to_fastest_only() {
        let flows = wardrop_flows(&[10.0, 100.0], 5.0).unwrap();
        assert_eq!(flows[0], 0.0);
        assert!((flows[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_system_splits_evenly() {
        let flows = wardrop_flows(&[8.0, 8.0, 8.0], 12.0).unwrap();
        for &l in &flows {
            assert!((l - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_demand() {
        assert!(wardrop_flows(&[1.0], 0.0).is_err());
        assert!(wardrop_flows(&[1.0, 2.0], 3.0).is_err());
        assert!(wardrop_flows(&[1.0, 2.0], f64::NAN).is_err());
    }

    #[test]
    fn iterative_matches_closed_form() {
        let mu = SystemModel::table1_rates();
        let phi = 0.6 * 510.0;
        let exact = wardrop_flows(&mu, phi).unwrap();
        let iterated = wardrop_iterative(&mu, phi, 1e-12, 200).unwrap();
        for (a, b) in exact.iter().zip(&iterated) {
            assert!(
                (a - b).abs() < 1e-6 * phi,
                "flow mismatch: closed {a} vs iterative {b}"
            );
        }
        // Tighter check on the equilibrium property itself.
        let times: Vec<f64> = iterated
            .iter()
            .zip(&mu)
            .filter(|(&l, _)| l > 1e-6)
            .map(|(&l, &m)| 1.0 / (m - l))
            .collect();
        let t0 = times[0];
        for &t in &times {
            assert!(
                (t - t0).abs() < 1e-6,
                "iterative times unequal: {t} vs {t0}"
            );
        }
    }

    #[test]
    fn scheme_is_perfectly_fair() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = IndividualOptimalScheme.compute(&model).unwrap();
        let d = user_response_times(&model, &p).unwrap();
        assert!((jain_index(&d).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ios_at_least_as_slow_as_gos() {
        use crate::response::overall_response_time;
        use crate::schemes::GlobalOptimalScheme;
        let model = SystemModel::table1_system(0.5).unwrap();
        let ios = IndividualOptimalScheme.compute(&model).unwrap();
        let gos = GlobalOptimalScheme::default().compute(&model).unwrap();
        let d_ios = overall_response_time(&model, &ios).unwrap();
        let d_gos = overall_response_time(&model, &gos).unwrap();
        assert!(d_ios >= d_gos - 1e-9, "IOS {d_ios} beat GOS {d_gos}");
    }
}
