//! Stackelberg scheduling (Roughgarden, STOC 2001) — the related-work
//! baseline the paper cites: "one player acts as a leader and the rest as
//! followers".
//!
//! A leader centrally routes a fraction `α` of the total demand to
//! minimize the overall response time, anticipating that the remaining
//! `(1−α)Φ` of traffic consists of selfish infinitesimal jobs that settle
//! into a Wardrop equilibrium *given* the leader's (fixed) flows.
//! Computing the optimal leader strategy is NP-hard; Roughgarden's
//! **Largest-Latency-First (LLF)** heuristic assigns the leader's flow to
//! the machines that carry the largest latency under the global optimum,
//! saturating each machine's globally-optimal flow before moving on.
//!
//! At `α = 0` this degenerates to IOS (pure Wardrop); at `α = 1` to GOS
//! (full central control) — both verified by tests. Intermediate `α`
//! interpolates, quantifying *how much central authority buys* — a
//! question the Nash scheme answers with "none needed".

use super::{wardrop_flows, LoadBalancingScheme};
use crate::best_reply::water_fill_flows;
use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::{Strategy, StrategyProfile};

/// The Stackelberg/LLF baseline with a centrally controlled fraction `α`.
#[derive(Debug, Clone, Copy)]
pub struct StackelbergScheme {
    alpha: f64,
}

impl StackelbergScheme {
    /// Creates the scheme with leader fraction `alpha ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// [`GameError::InvalidRate`] for `alpha` outside `[0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, GameError> {
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
            return Err(GameError::InvalidRate {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(Self { alpha })
    }

    /// The leader fraction.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Computes the aggregate flows: leader (LLF) plus induced Wardrop
    /// followers. Returns `(leader_flows, follower_flows)`.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures (cannot occur for a valid model).
    pub fn aggregate_flows(&self, model: &SystemModel) -> Result<(Vec<f64>, Vec<f64>), GameError> {
        let mu = model.computer_rates();
        let n = mu.len();
        let phi = model.total_arrival_rate();
        let leader_demand = self.alpha * phi;
        let follower_demand = phi - leader_demand;

        // The global optimum the leader aims to induce.
        let optimal = water_fill_flows(mu, phi)?;

        // LLF: fill machines in decreasing order of their latency at the
        // global optimum, up to each machine's optimal flow.
        let mut order: Vec<usize> = (0..n).collect();
        let latency = |i: usize| {
            if optimal[i] > 0.0 {
                1.0 / (mu[i] - optimal[i])
            } else {
                // Unused machines have the least claim on leader flow.
                0.0
            }
        };
        order.sort_by(|&a, &b| {
            latency(b)
                .partial_cmp(&latency(a))
                .expect("finite latencies")
                .then(a.cmp(&b))
        });
        let mut leader = vec![0.0; n];
        let mut remaining = leader_demand;
        for &i in &order {
            if remaining <= 0.0 {
                break;
            }
            let take = optimal[i].min(remaining);
            leader[i] = take;
            remaining -= take;
        }

        // Followers play Wardrop on the residual capacities.
        let follower = if follower_demand > 0.0 {
            let residual: Vec<f64> = mu.iter().zip(&leader).map(|(&m, &l)| m - l).collect();
            wardrop_flows(&residual, follower_demand)?
        } else {
            vec![0.0; n]
        };
        Ok((leader, follower))
    }
}

impl LoadBalancingScheme for StackelbergScheme {
    fn name(&self) -> &'static str {
        "STACKELBERG"
    }

    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        let (leader, follower) = self.aggregate_flows(model)?;
        let phi = model.total_arrival_rate();
        let fractions: Vec<f64> = leader
            .iter()
            .zip(&follower)
            .map(|(&l, &f)| (l + f) / phi)
            .collect();
        StrategyProfile::replicated(Strategy::new(fractions)?, model.num_users())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::overall_response_time;
    use crate::schemes::{GlobalOptimalScheme, IndividualOptimalScheme};

    fn model() -> SystemModel {
        SystemModel::table1_system(0.6).unwrap()
    }

    #[test]
    fn alpha_bounds_are_validated() {
        assert!(StackelbergScheme::new(-0.1).is_err());
        assert!(StackelbergScheme::new(1.1).is_err());
        assert!(StackelbergScheme::new(f64::NAN).is_err());
        assert_eq!(StackelbergScheme::new(0.3).unwrap().alpha(), 0.3);
    }

    #[test]
    fn alpha_zero_is_wardrop() {
        let m = model();
        let st = StackelbergScheme::new(0.0).unwrap().compute(&m).unwrap();
        let ios = IndividualOptimalScheme.compute(&m).unwrap();
        let d_st = overall_response_time(&m, &st).unwrap();
        let d_ios = overall_response_time(&m, &ios).unwrap();
        assert!((d_st - d_ios).abs() < 1e-9, "{d_st} vs {d_ios}");
    }

    #[test]
    fn alpha_one_is_global_optimum() {
        let m = model();
        let st = StackelbergScheme::new(1.0).unwrap().compute(&m).unwrap();
        let gos = GlobalOptimalScheme::default().compute(&m).unwrap();
        let d_st = overall_response_time(&m, &st).unwrap();
        let d_gos = overall_response_time(&m, &gos).unwrap();
        assert!((d_st - d_gos).abs() < 1e-9, "{d_st} vs {d_gos}");
    }

    #[test]
    fn cost_interpolates_between_wardrop_and_optimum() {
        let m = model();
        let d_ios =
            overall_response_time(&m, &IndividualOptimalScheme.compute(&m).unwrap()).unwrap();
        let d_gos = overall_response_time(&m, &GlobalOptimalScheme::default().compute(&m).unwrap())
            .unwrap();
        let mut prev = d_ios;
        for alpha in [0.2, 0.4, 0.6, 0.8] {
            let p = StackelbergScheme::new(alpha).unwrap().compute(&m).unwrap();
            let d = overall_response_time(&m, &p).unwrap();
            assert!(d <= d_ios + 1e-9, "alpha {alpha}: worse than Wardrop");
            assert!(d >= d_gos - 1e-9, "alpha {alpha}: beats the optimum?!");
            assert!(d <= prev + 1e-9, "cost not monotone at alpha {alpha}");
            prev = d;
        }
    }

    #[test]
    fn flows_conserve_and_respect_capacity() {
        let m = model();
        for alpha in [0.0, 0.3, 0.7, 1.0] {
            let (leader, follower) = StackelbergScheme::new(alpha)
                .unwrap()
                .aggregate_flows(&m)
                .unwrap();
            let total: f64 = leader.iter().sum::<f64>() + follower.iter().sum::<f64>();
            assert!((total - m.total_arrival_rate()).abs() < 1e-6);
            for ((l, f), mu) in leader.iter().zip(&follower).zip(m.computer_rates()) {
                assert!(l + f < *mu, "saturated at alpha {alpha}");
            }
        }
    }

    #[test]
    fn leader_takes_the_highest_latency_machines_first() {
        // With a small alpha, leader flow must sit on the machines whose
        // optimal latency is largest (the slow ones used at optimum).
        let m = model();
        let (leader, _) = StackelbergScheme::new(0.1)
            .unwrap()
            .aggregate_flows(&m)
            .unwrap();
        let optimal = water_fill_flows(m.computer_rates(), m.total_arrival_rate()).unwrap();
        let lat: Vec<f64> = optimal
            .iter()
            .zip(m.computer_rates())
            .map(|(&x, &mu)| if x > 0.0 { 1.0 / (mu - x) } else { 0.0 })
            .collect();
        // LLF order correctness: every machine the leader fills has a
        // latency at least as large as every machine it leaves untouched.
        let min_filled = leader
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0.0)
            .map(|(i, _)| lat[i])
            .fold(f64::INFINITY, f64::min);
        let max_untouched = leader
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0.0)
            .map(|(i, _)| lat[i])
            .fold(0.0, f64::max);
        assert!(
            min_filled >= max_untouched - 1e-9,
            "filled latency {min_filled} vs untouched {max_untouched}"
        );
        // And the slowest (highest-latency) used class is filled to its
        // optimal flow before anything else.
        let max_lat = lat.iter().cloned().fold(0.0, f64::max);
        for (i, &l) in lat.iter().enumerate() {
            if (l - max_lat).abs() < 1e-12 && optimal[i] > 0.0 {
                assert!(
                    (leader[i] - optimal[i]).abs() < 1e-9,
                    "highest-latency machine {i} not saturated first"
                );
            }
        }
    }
}
