//! The Global Optimal Scheme (GOS) baseline — Kim & Kameda 1992.
//!
//! GOS minimizes the *overall* expected response time
//! `D(s) = (1/Φ) Σ_j φ_j D_j(s)`. Because `D` depends only on the
//! aggregate flows `λ_i = Σ_j s_ji φ_j`, the optimum factorizes:
//!
//! 1. **Aggregate step** — minimize `Σ_i λ_i/(μ_i − λ_i)` over
//!    `Σ λ_i = Φ`, `λ >= 0`. This is exactly the water-filling program of
//!    [`crate::best_reply`] with a single "grand user" of rate `Φ`.
//! 2. **Decomposition step** — split the aggregate flows among users. Any
//!    split with the right column sums is equally optimal *socially*, but
//!    per-user response times differ wildly between splits. The paper's
//!    NLP solver lands on an unfair vertex (its Figure 5); our
//!    [`Decomposition::Sequential`] reproduces that behaviour, while
//!    [`Decomposition::Uniform`] is the fair counterpoint used in
//!    ablations (see DESIGN.md substitution #3).

use super::LoadBalancingScheme;
use crate::best_reply::water_fill_flows;
use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::{Strategy, StrategyProfile};

/// How the socially optimal aggregate flows are split among users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decomposition {
    /// Users are processed in index order; each fills the fastest
    /// remaining optimal capacity. Produces the unfair per-user spread the
    /// paper reports for GOS.
    #[default]
    Sequential,
    /// Every user plays `s_ji = λ_i / Φ`: all users get identical expected
    /// response times (fairness index exactly 1).
    Uniform,
}

/// The GOS baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalOptimalScheme {
    /// Decomposition of aggregate flows into user strategies.
    pub decomposition: Decomposition,
}

impl GlobalOptimalScheme {
    /// GOS with a specific decomposition.
    pub fn new(decomposition: Decomposition) -> Self {
        Self { decomposition }
    }

    /// The socially optimal *aggregate* flows `λ_i` (step 1).
    ///
    /// # Errors
    ///
    /// Propagates water-filling failures (cannot occur for a valid model,
    /// whose construction guarantees `Φ < Σ μ_i`).
    pub fn aggregate_flows(model: &SystemModel) -> Result<Vec<f64>, GameError> {
        water_fill_flows(model.computer_rates(), model.total_arrival_rate())
    }
}

impl LoadBalancingScheme for GlobalOptimalScheme {
    fn name(&self) -> &'static str {
        "GOS"
    }

    fn compute(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        let flows = Self::aggregate_flows(model)?;
        match self.decomposition {
            Decomposition::Uniform => {
                let phi = model.total_arrival_rate();
                let strategy = Strategy::new(flows.iter().map(|l| l / phi).collect())?;
                StrategyProfile::replicated(strategy, model.num_users())
            }
            Decomposition::Sequential => sequential_decomposition(model, &flows),
        }
    }
}

/// Fills users (in index order) into the aggregate flows, fastest
/// computers first. Early users end up exclusively on fast computers.
fn sequential_decomposition(
    model: &SystemModel,
    flows: &[f64],
) -> Result<StrategyProfile, GameError> {
    let mut remaining = flows.to_vec();
    // Fastest computers first, deterministic on ties.
    let order = model.computers().descending_order();
    let mut rows = Vec::with_capacity(model.num_users());
    for j in 0..model.num_users() {
        let phi_j = model.user_rate(j);
        let mut need = phi_j;
        let mut fractions = vec![0.0; flows.len()];
        for &i in &order {
            if need <= 0.0 {
                break;
            }
            let take = remaining[i].min(need);
            if take > 0.0 {
                fractions[i] = take / phi_j;
                remaining[i] -= take;
                need -= take;
            }
        }
        if need > 1e-6 * phi_j {
            return Err(GameError::InfeasibleStrategy {
                reason: format!(
                    "sequential GOS decomposition left user {j} short by {need} jobs/s"
                ),
            });
        }
        // Absorb the numerical residue into the user's largest component.
        rows.push(Strategy::new(normalize(fractions))?);
    }
    StrategyProfile::new(rows)
}

fn normalize(mut fractions: Vec<f64>) -> Vec<f64> {
    let sum: f64 = fractions.iter().sum();
    if sum > 0.0 {
        for f in &mut fractions {
            *f /= sum;
        }
    }
    fractions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_reply::{satisfies_kkt, split_cost};
    use crate::response::{overall_response_time, user_response_times};
    use lb_stats::jain_index;

    #[test]
    fn aggregate_flows_are_kkt_optimal() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let flows = GlobalOptimalScheme::aggregate_flows(&model).unwrap();
        assert!(satisfies_kkt(model.computer_rates(), &flows, 1e-6));
        let total: f64 = flows.iter().sum();
        assert!((total - model.total_arrival_rate()).abs() < 1e-6);
    }

    #[test]
    fn both_decompositions_realize_the_same_social_objective() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let seq = GlobalOptimalScheme::new(Decomposition::Sequential)
            .compute(&model)
            .unwrap();
        let uni = GlobalOptimalScheme::new(Decomposition::Uniform)
            .compute(&model)
            .unwrap();
        let d_seq = overall_response_time(&model, &seq).unwrap();
        let d_uni = overall_response_time(&model, &uni).unwrap();
        assert!(
            (d_seq - d_uni).abs() < 1e-6,
            "decompositions change the social optimum: {d_seq} vs {d_uni}"
        );
        // And both reproduce the aggregate-flow objective.
        let flows = GlobalOptimalScheme::aggregate_flows(&model).unwrap();
        let d_agg = split_cost(model.computer_rates(), &flows);
        assert!((d_seq - d_agg).abs() < 1e-6);
    }

    #[test]
    fn uniform_decomposition_is_perfectly_fair() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = GlobalOptimalScheme::new(Decomposition::Uniform)
            .compute(&model)
            .unwrap();
        let d = user_response_times(&model, &p).unwrap();
        assert!((jain_index(&d).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_decomposition_is_unfair_like_the_paper() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = GlobalOptimalScheme::default().compute(&model).unwrap();
        let d = user_response_times(&model, &p).unwrap();
        let idx = jain_index(&d).unwrap();
        assert!(
            idx < 0.999,
            "sequential GOS should show unfairness, got {idx}"
        );
        // Early (heavy) users grabbed the fast computers and do better.
        assert!(
            d[0] < *d.last().unwrap(),
            "user 0 ({:.4}) should beat user 9 ({:.4})",
            d[0],
            d.last().unwrap()
        );
    }

    #[test]
    fn decomposition_conserves_aggregate_flows() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let target = GlobalOptimalScheme::aggregate_flows(&model).unwrap();
        let p = GlobalOptimalScheme::default().compute(&model).unwrap();
        let got = p.computer_flows(&model).unwrap();
        for (a, b) in target.iter().zip(&got) {
            assert!((a - b).abs() < 1e-6, "aggregate flow mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn light_load_uses_only_fast_computers() {
        let model = SystemModel::table1_system(0.1).unwrap();
        let flows = GlobalOptimalScheme::aggregate_flows(&model).unwrap();
        // At 10% utilization the slow (rate-10) computers should be idle.
        for (i, &mu) in model.computer_rates().iter().enumerate() {
            if mu == 10.0 {
                assert_eq!(flows[i], 0.0, "slow computer {i} should be unused");
            }
        }
    }

    #[test]
    fn tiny_system_sequential_matches_manual() {
        // 2 computers (mu 4, 8), 2 users (phi 1, 2); optimal flows then
        // user 0 fills the fastest remaining capacity first.
        let model = SystemModel::new(vec![4.0, 8.0], vec![1.0, 2.0]).unwrap();
        let flows = GlobalOptimalScheme::aggregate_flows(&model).unwrap();
        let p = GlobalOptimalScheme::default().compute(&model).unwrap();
        // User 0 (rate 1) fits entirely in computer 1's optimal flow
        // (computer 1 is fastest and its lambda_1 >= 1 here).
        assert!(flows[1] >= 1.0);
        assert_eq!(p.strategy(0).fraction(1), 1.0);
    }
}
