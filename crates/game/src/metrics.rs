//! Evaluation metrics for a strategy profile — the two quantities the
//! paper plots everywhere: expected response time (per user and system)
//! and Jain's fairness index.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::response::{overall_response_time, user_response_times};
use crate::strategy::StrategyProfile;
use lb_stats::jain_index;

/// Analytic evaluation of a strategy profile against a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileMetrics {
    /// Per-user expected response times `D_j`.
    pub user_times: Vec<f64>,
    /// System-wide expected response time `D = (1/Φ) Σ φ_j D_j`.
    pub overall_time: f64,
    /// Jain's fairness index of the user times (`NaN` if undefined, e.g.
    /// under saturation).
    pub fairness: f64,
    /// Aggregate flow at each computer `λ_i`.
    pub computer_flows: Vec<f64>,
    /// Per-computer utilizations `λ_i / μ_i`.
    pub computer_utilizations: Vec<f64>,
}

/// Evaluates `profile` on `model`.
///
/// # Examples
///
/// ```
/// use lb_game::metrics::evaluate_profile;
/// use lb_game::model::SystemModel;
/// use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};
///
/// let model = SystemModel::new(vec![10.0, 30.0], vec![8.0]).unwrap();
/// let profile = ProportionalScheme.compute(&model).unwrap();
/// let m = evaluate_profile(&model, &profile).unwrap();
/// assert_eq!(m.fairness, 1.0); // PS is perfectly fair
/// assert!((m.computer_utilizations[0] - 0.2).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] when the shapes disagree.
pub fn evaluate_profile(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<ProfileMetrics, GameError> {
    let user_times = user_response_times(model, profile)?;
    let overall_time = overall_response_time(model, profile)?;
    let fairness = jain_index(&user_times).unwrap_or(f64::NAN);
    let computer_flows = profile.computer_flows(model)?;
    let computer_utilizations = computer_flows
        .iter()
        .zip(model.computer_rates())
        .map(|(&l, &mu)| l / mu)
        .collect();
    Ok(ProfileMetrics {
        user_times,
        overall_time,
        fairness,
        computer_flows,
        computer_utilizations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{LoadBalancingScheme, ProportionalScheme};

    #[test]
    fn metrics_are_consistent() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        let m = evaluate_profile(&model, &p).unwrap();
        assert_eq!(m.user_times.len(), 10);
        assert_eq!(m.computer_flows.len(), 16);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        // Overall equals the rate-weighted user mean.
        let phi: f64 = model.total_arrival_rate();
        let weighted: f64 = m
            .user_times
            .iter()
            .zip(model.user_rates())
            .map(|(&d, &f)| d * f)
            .sum::<f64>()
            / phi;
        assert!((m.overall_time - weighted).abs() < 1e-12);
        // PS equalizes utilization at rho.
        for &u in &m.computer_utilizations {
            assert!((u - 0.6).abs() < 1e-9);
        }
        // Flows conserve the total rate.
        let total: f64 = m.computer_flows.iter().sum();
        assert!((total - phi).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_errors() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let other = SystemModel::new(vec![5.0, 5.0], vec![1.0]).unwrap();
        let p = ProportionalScheme.compute(&other).unwrap();
        assert!(evaluate_profile(&model, &p).is_err());
    }
}
