//! Overload policies and load shedding — keeping the game feasible when
//! capacity churns.
//!
//! The paper's standing assumption is `Φ < Σ μ_i`: total demand strictly
//! below total capacity. A server crash or degradation can violate it
//! mid-run, and until this module the only response was
//! [`GameError::Overloaded`] — a hard abort. Real systems *degrade*
//! instead: an admission controller sheds just enough load that the
//! residual game is feasible again, the equilibrium machinery
//! re-converges on what remains, and the shed traffic is reported rather
//! than silently lost.
//!
//! [`OverloadPolicy`] selects how the pain is distributed:
//!
//! * [`OverloadPolicy::Reject`] — the pre-existing behavior: error out
//!   when `Φ ≥ Σ μ_i`, shed nothing.
//! * [`OverloadPolicy::ShedProportional`] — every user keeps the same
//!   fraction of its nominal rate (`admitted_j = φ_j · target/Φ`); the
//!   heaviest user sheds the most in absolute terms, but relative pain
//!   is equal.
//! * [`OverloadPolicy::ShedMaxMin`] — max-min fair: admitted rates are
//!   `min(φ_j, c)` with a common cap `c` chosen so the admitted total
//!   hits the target. Small users are untouched; only the heavy hitters
//!   are clipped.
//!
//! Both shedding policies aim at `Σ admitted = headroom · Σ μ_i` with
//! `headroom ∈ (0, 1)`, so the residual game satisfies the strict
//! inequality with margin to spare — a system shaved to within an ulp of
//! capacity would be "feasible" but useless (response times `~1/(μ−λ)`
//! diverge as the margin vanishes).
//!
//! [`shed_to_feasible`] computes a [`ShedPlan`] from raw rate vectors so
//! it can be applied *before* a [`SystemModel`] exists (an infeasible
//! model cannot be constructed at all — that is the point). The
//! [`ShedPlan::for_model`] convenience trims an already-feasible model
//! down to the policy's headroom target.

use crate::error::GameError;
use crate::model::SystemModel;

/// What to do when total demand reaches (or exceeds the headroom share
/// of) total capacity.
///
/// See the [module docs](self) for the semantics of each variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadPolicy {
    /// Fail with [`GameError::Overloaded`] when `Φ ≥ Σ μ_i`; admit
    /// everything otherwise. This is the legacy behavior.
    Reject,
    /// Scale every user's rate by the same factor so the admitted total
    /// equals `headroom · Σ μ_i`.
    ShedProportional {
        /// Target utilization of the residual system, in `(0, 1)`.
        headroom: f64,
    },
    /// Cap every user at a common admitted rate `c` (water-filling on
    /// user rates) so the admitted total equals `headroom · Σ μ_i`;
    /// users below the cap are untouched.
    ShedMaxMin {
        /// Target utilization of the residual system, in `(0, 1)`.
        headroom: f64,
    },
}

impl OverloadPolicy {
    /// The policy's target admitted total for a given capacity: `Σ μ_i`
    /// itself for [`Reject`](Self::Reject) (only strict infeasibility
    /// errors), `headroom · Σ μ_i` for the shedding policies.
    #[must_use]
    pub fn admitted_target(&self, total_capacity: f64) -> f64 {
        match *self {
            Self::Reject => total_capacity,
            Self::ShedProportional { headroom } | Self::ShedMaxMin { headroom } => {
                headroom * total_capacity
            }
        }
    }

    fn validate(&self) -> Result<(), GameError> {
        match *self {
            Self::Reject => Ok(()),
            Self::ShedProportional { headroom } | Self::ShedMaxMin { headroom } => {
                if headroom.is_finite() && headroom > 0.0 && headroom < 1.0 {
                    Ok(())
                } else {
                    Err(GameError::InvalidRate {
                        name: "headroom",
                        value: headroom,
                    })
                }
            }
        }
    }
}

/// The outcome of an admission-control decision: per-user admitted and
/// shed rates, summing back to the nominal rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedPlan {
    /// Per-user admitted arrival rate (`admitted_j ≤ φ_j`).
    pub admitted: Vec<f64>,
    /// Per-user shed arrival rate (`φ_j − admitted_j`).
    pub shed: Vec<f64>,
    /// Total capacity `Σ μ_i` the plan was computed against.
    pub total_capacity: f64,
}

impl ShedPlan {
    /// Total admitted arrival rate.
    #[must_use]
    pub fn admitted_total(&self) -> f64 {
        self.admitted.iter().sum()
    }

    /// Total shed arrival rate.
    #[must_use]
    pub fn shed_total(&self) -> f64 {
        self.shed.iter().sum()
    }

    /// Whether any load was shed at all.
    #[must_use]
    pub fn sheds(&self) -> bool {
        self.shed.iter().any(|&s| s > 0.0)
    }

    /// Trims an already-feasible model down to `policy`'s headroom
    /// target (a model with `Φ ≥ Σ μ` cannot exist, so this never sees
    /// strict infeasibility).
    ///
    /// # Errors
    ///
    /// Propagates [`shed_to_feasible`] failures (invalid headroom).
    pub fn for_model(model: &SystemModel, policy: OverloadPolicy) -> Result<Self, GameError> {
        shed_to_feasible(model.computer_rates(), model.user_rates(), policy)
    }
}

/// Computes per-user admitted rates so the residual game is strictly
/// feasible under `policy`.
///
/// `computer_rates` may contain zeros (crashed servers); negative or
/// non-finite entries are rejected. `user_rates` likewise may contain
/// zeros (failed/idle users keep a zero admitted rate).
///
/// # Errors
///
/// * [`GameError::InvalidRate`] for a negative/non-finite rate or an
///   out-of-range `headroom`.
/// * [`GameError::Overloaded`] under [`OverloadPolicy::Reject`] when
///   `Φ ≥ Σ μ_i`, and under any policy when `Σ μ_i = 0` with `Φ > 0`
///   (no capacity at all — nothing to shed *to*). The payload carries
///   the utilization and minimum shed volume.
pub fn shed_to_feasible(
    computer_rates: &[f64],
    user_rates: &[f64],
    policy: OverloadPolicy,
) -> Result<ShedPlan, GameError> {
    policy.validate()?;
    for &mu in computer_rates {
        if !mu.is_finite() || mu < 0.0 {
            return Err(GameError::InvalidRate {
                name: "computer_rate",
                value: mu,
            });
        }
    }
    for &phi in user_rates {
        if !phi.is_finite() || phi < 0.0 {
            return Err(GameError::InvalidRate {
                name: "user_rate",
                value: phi,
            });
        }
    }
    let total_capacity: f64 = computer_rates.iter().sum();
    let total_demand: f64 = user_rates.iter().sum();

    if total_capacity <= 0.0 && total_demand > 0.0 {
        return Err(GameError::overloaded(total_demand, total_capacity));
    }

    let target = policy.admitted_target(total_capacity);
    if total_demand < target || (total_demand == 0.0) {
        // Feasible with margin already (for Reject: strictly feasible).
        return Ok(ShedPlan {
            admitted: user_rates.to_vec(),
            shed: vec![0.0; user_rates.len()],
            total_capacity,
        });
    }

    let admitted: Vec<f64> = match policy {
        OverloadPolicy::Reject => {
            // total_demand >= target == total_capacity here.
            return Err(GameError::overloaded(total_demand, total_capacity));
        }
        OverloadPolicy::ShedProportional { .. } => {
            let scale = target / total_demand;
            user_rates.iter().map(|&phi| phi * scale).collect()
        }
        OverloadPolicy::ShedMaxMin { .. } => max_min_admitted(user_rates, target),
    };
    let shed: Vec<f64> = user_rates
        .iter()
        .zip(&admitted)
        .map(|(&phi, &a)| (phi - a).max(0.0))
        .collect();
    Ok(ShedPlan {
        admitted,
        shed,
        total_capacity,
    })
}

/// Max-min fair admission: find the common cap `c` with
/// `Σ_j min(φ_j, c) = target` and admit `min(φ_j, c)`. Classic
/// water-filling over the sorted rates, `O(m log m)`.
fn max_min_admitted(user_rates: &[f64], target: f64) -> Vec<f64> {
    let mut sorted: Vec<f64> = user_rates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let m = sorted.len();
    // Walk users ascending; once the remaining budget split evenly over
    // the remaining (heavier) users no longer covers the next user's full
    // rate, that even split is the cap.
    let mut remaining = target;
    let mut cap = f64::INFINITY;
    for (k, &phi) in sorted.iter().enumerate() {
        let share = remaining / (m - k) as f64;
        if phi >= share {
            cap = share;
            break;
        }
        remaining -= phi;
    }
    user_rates.iter().map(|&phi| phi.min(cap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_demand_is_admitted_untouched() {
        for policy in [
            OverloadPolicy::Reject,
            OverloadPolicy::ShedProportional { headroom: 0.9 },
            OverloadPolicy::ShedMaxMin { headroom: 0.9 },
        ] {
            let plan = shed_to_feasible(&[10.0, 20.0], &[5.0, 8.0], policy).unwrap();
            assert_eq!(plan.admitted, vec![5.0, 8.0]);
            assert!(!plan.sheds());
            assert_eq!(plan.shed_total(), 0.0);
        }
    }

    #[test]
    fn reject_errors_exactly_when_infeasible() {
        // Φ = 29 < Σμ = 30: fine even though it exceeds 90% headroom.
        assert!(shed_to_feasible(&[10.0, 20.0], &[14.0, 15.0], OverloadPolicy::Reject).is_ok());
        // Φ = Σμ: the strict inequality fails.
        let err =
            shed_to_feasible(&[10.0, 20.0], &[15.0, 15.0], OverloadPolicy::Reject).unwrap_err();
        match err {
            GameError::Overloaded {
                utilization,
                min_shed,
                ..
            } => {
                assert!((utilization - 1.0).abs() < 1e-12);
                assert!(min_shed.abs() < 1e-12);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn proportional_shedding_scales_everyone_equally() {
        // Capacity 30, demand 40, headroom 0.75 -> target 22.5.
        let plan = shed_to_feasible(
            &[10.0, 20.0],
            &[10.0, 30.0],
            OverloadPolicy::ShedProportional { headroom: 0.75 },
        )
        .unwrap();
        let scale = 22.5 / 40.0;
        assert!((plan.admitted[0] - 10.0 * scale).abs() < 1e-12);
        assert!((plan.admitted[1] - 30.0 * scale).abs() < 1e-12);
        assert!((plan.admitted_total() - 22.5).abs() < 1e-9);
        // Shed + admitted reconstructs nominal.
        for ((&a, &s), &phi) in plan.admitted.iter().zip(&plan.shed).zip(&[10.0, 30.0]) {
            assert!((a + s - phi).abs() < 1e-12);
        }
    }

    #[test]
    fn max_min_shedding_spares_small_users() {
        // Capacity 30, headroom 0.8 -> target 24. Users [2, 10, 30]:
        // the cap lands between 10 and 30, so users 0 and 1 are whole
        // and user 2 absorbs all the shedding: c = 24 - 2 - 10 = 12.
        let plan = shed_to_feasible(
            &[10.0, 20.0],
            &[2.0, 10.0, 30.0],
            OverloadPolicy::ShedMaxMin { headroom: 0.8 },
        )
        .unwrap();
        assert_eq!(plan.admitted[0], 2.0);
        assert_eq!(plan.admitted[1], 10.0);
        assert!((plan.admitted[2] - 12.0).abs() < 1e-9);
        assert!((plan.admitted_total() - 24.0).abs() < 1e-9);
        assert!((plan.shed_total() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_cap_binds_everyone_when_rates_are_equal() {
        // Equal users: max-min degenerates to proportional.
        let plan = shed_to_feasible(
            &[10.0],
            &[8.0, 8.0],
            OverloadPolicy::ShedMaxMin { headroom: 0.5 },
        )
        .unwrap();
        assert!((plan.admitted[0] - 2.5).abs() < 1e-9);
        assert!((plan.admitted[1] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_is_overloaded_under_every_policy() {
        for policy in [
            OverloadPolicy::Reject,
            OverloadPolicy::ShedProportional { headroom: 0.9 },
            OverloadPolicy::ShedMaxMin { headroom: 0.9 },
        ] {
            let err = shed_to_feasible(&[0.0, 0.0], &[1.0], policy).unwrap_err();
            assert!(matches!(err, GameError::Overloaded { .. }));
        }
    }

    #[test]
    fn zero_rate_users_stay_zero() {
        let plan = shed_to_feasible(
            &[10.0],
            &[0.0, 20.0],
            OverloadPolicy::ShedProportional { headroom: 0.5 },
        )
        .unwrap();
        assert_eq!(plan.admitted[0], 0.0);
        assert!((plan.admitted[1] - 5.0).abs() < 1e-9);
        let plan = shed_to_feasible(
            &[10.0],
            &[0.0, 20.0],
            OverloadPolicy::ShedMaxMin { headroom: 0.5 },
        )
        .unwrap();
        assert_eq!(plan.admitted[0], 0.0);
        assert!((plan.admitted[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_headroom_and_rates_are_rejected() {
        for h in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(shed_to_feasible(
                &[10.0],
                &[20.0],
                OverloadPolicy::ShedProportional { headroom: h }
            )
            .is_err());
        }
        assert!(shed_to_feasible(&[-1.0], &[1.0], OverloadPolicy::Reject).is_err());
        assert!(shed_to_feasible(&[1.0], &[-1.0], OverloadPolicy::Reject).is_err());
        assert!(shed_to_feasible(&[f64::NAN], &[1.0], OverloadPolicy::Reject).is_err());
    }

    #[test]
    fn for_model_trims_a_feasible_model_to_headroom() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![14.0, 14.0]).unwrap();
        // Utilization 28/30 ≈ 0.93 exceeds the 0.8 target -> shed.
        let plan = ShedPlan::for_model(&model, OverloadPolicy::ShedProportional { headroom: 0.8 })
            .unwrap();
        assert!(plan.sheds());
        assert!((plan.admitted_total() - 24.0).abs() < 1e-9);
        // Reject leaves a feasible model alone.
        let plan = ShedPlan::for_model(&model, OverloadPolicy::Reject).unwrap();
        assert!(!plan.sheds());
    }

    #[test]
    fn shedding_always_lands_exactly_on_target() {
        // Property-flavored sweep: the admitted total equals the target
        // whenever shedding occurs, for both policies.
        let capacities = [5.0_f64, 17.0, 100.0];
        let users: Vec<Vec<f64>> = vec![
            vec![50.0],
            vec![1.0, 2.0, 3.0, 400.0],
            vec![30.0, 30.0, 30.0],
        ];
        for &cap in &capacities {
            for u in &users {
                for policy in [
                    OverloadPolicy::ShedProportional { headroom: 0.7 },
                    OverloadPolicy::ShedMaxMin { headroom: 0.7 },
                ] {
                    let plan = shed_to_feasible(&[cap], u, policy).unwrap();
                    let target = 0.7 * cap;
                    if plan.sheds() {
                        assert!(
                            (plan.admitted_total() - target).abs() < 1e-9 * (1.0 + target),
                            "cap {cap}, users {u:?}, policy {policy:?}"
                        );
                    }
                    for (&a, &phi) in plan.admitted.iter().zip(u) {
                        assert!(a >= 0.0 && a <= phi + 1e-12);
                    }
                }
            }
        }
    }
}
