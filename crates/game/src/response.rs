//! Expected-response-time functionals of the game (paper Eqs. (1)–(2)).
//!
//! * `F_i(s) = 1 / (μ_i − Σ_k s_ki φ_k)` — expected M/M/1 response time at
//!   computer `i` under profile `s`;
//! * `D_j(s) = Σ_i s_ji F_i(s)` — user `j`'s expected response time (its
//!   cost in the game);
//! * `D(s) = (1/Φ) Σ_j φ_j D_j(s)` — the system-wide expected response
//!   time, which the GOS baseline minimizes.
//!
//! Saturated computers yield `+∞`, so these functions are total on any
//! profile and can be used as penalties inside iterative solvers.

use crate::error::GameError;
use crate::model::SystemModel;
use crate::strategy::StrategyProfile;
use lb_queueing::mm1;

/// Per-computer expected response times `F_i(s)` (`+∞` at saturated
/// computers).
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] when profile and model shapes disagree.
pub fn computer_response_times(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<Vec<f64>, GameError> {
    let flows = profile.computer_flows(model)?;
    Ok(flows
        .iter()
        .zip(model.computer_rates())
        .map(|(&lambda, &mu)| mm1::response_time(lambda, mu))
        .collect())
}

/// User `j`'s expected response time `D_j(s)`.
///
/// Computers the user does not use (`s_ji = 0`) contribute nothing even if
/// saturated by others; a computer the user *does* use while saturated
/// makes `D_j = +∞`.
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] on shape mismatch.
pub fn user_response_time(
    model: &SystemModel,
    profile: &StrategyProfile,
    j: usize,
) -> Result<f64, GameError> {
    let f = computer_response_times(model, profile)?;
    Ok(dot_ignoring_unused(profile.strategy(j).fractions(), &f))
}

/// All users' expected response times `D_1(s) … D_m(s)`.
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] on shape mismatch.
pub fn user_response_times(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<Vec<f64>, GameError> {
    let f = computer_response_times(model, profile)?;
    Ok((0..profile.num_users())
        .map(|j| dot_ignoring_unused(profile.strategy(j).fractions(), &f))
        .collect())
}

/// System-wide expected response time `D(s) = (1/Φ) Σ_j φ_j D_j(s)` —
/// the social objective (what GOS minimizes).
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] on shape mismatch.
pub fn overall_response_time(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<f64, GameError> {
    let d = user_response_times(model, profile)?;
    let phi_total = model.total_arrival_rate();
    Ok(d.iter()
        .zip(model.user_rates())
        .map(|(&dj, &phi)| phi * dj)
        .sum::<f64>()
        / phi_total)
}

/// Variance of user `j`'s response time under profile `s`.
///
/// The M/M/1 sojourn time at computer `i` is exponential with rate
/// `μ_i − λ_i`, so user `j`'s response time is a *mixture* of
/// exponentials with weights `s_ji`:
///
/// ```text
/// E[T_j²] = Σ_i s_ji · 2/(μ_i − λ_i)² ,   Var = E[T²] − E[T]².
/// ```
///
/// The game optimizes the mean only; the variance exposes a hidden cost
/// of mixing across computers of different speeds (validated against the
/// simulator in `lb-sim`).
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] on shape mismatch.
pub fn user_response_variance(
    model: &SystemModel,
    profile: &StrategyProfile,
    j: usize,
) -> Result<f64, GameError> {
    let f = computer_response_times(model, profile)?;
    let s = profile.strategy(j).fractions();
    let mean = dot_ignoring_unused(s, &f);
    if !mean.is_finite() {
        return Ok(f64::INFINITY);
    }
    let second_moment: f64 = s
        .iter()
        .zip(&f)
        .filter(|(&si, _)| si > 0.0)
        .map(|(&si, &fi)| si * 2.0 * fi * fi)
        .sum();
    Ok(second_moment - mean * mean)
}

/// `Σ_i s_i f_i` treating `0 · ∞` as `0` (an unused saturated computer
/// costs the user nothing).
fn dot_ignoring_unused(s: &[f64], f: &[f64]) -> f64 {
    s.iter()
        .zip(f)
        .filter(|(&si, _)| si > 0.0)
        .map(|(&si, &fi)| si * fi)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn model() -> SystemModel {
        SystemModel::new(vec![4.0, 8.0], vec![2.0, 4.0]).unwrap()
    }

    #[test]
    fn computer_times_match_mm1() {
        let m = model();
        // Everyone splits 50/50: flows = [3, 3]; F = [1/(4-3), 1/(8-3)].
        let p = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        let f = computer_response_times(&m, &p).unwrap();
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn user_time_is_weighted_average() {
        let m = model();
        let p = StrategyProfile::new(vec![
            Strategy::new(vec![0.25, 0.75]).unwrap(),
            Strategy::new(vec![0.5, 0.5]).unwrap(),
        ])
        .unwrap();
        // flows: [0.25*2 + 0.5*4, 0.75*2 + 0.5*4] = [2.5, 3.5]
        // F = [1/1.5, 1/4.5]
        let d0 = user_response_time(&m, &p, 0).unwrap();
        let expected0 = 0.25 / 1.5 + 0.75 / 4.5;
        assert!((d0 - expected0).abs() < 1e-12);
        let all = user_response_times(&m, &p).unwrap();
        assert!((all[0] - d0).abs() < 1e-15);
        let d1 = 0.5 / 1.5 + 0.5 / 4.5;
        assert!((all[1] - d1).abs() < 1e-12);
    }

    #[test]
    fn overall_is_rate_weighted() {
        let m = model();
        let p = StrategyProfile::replicated(Strategy::uniform(2), 2).unwrap();
        let d = user_response_times(&m, &p).unwrap();
        let overall = overall_response_time(&m, &p).unwrap();
        let expected = (2.0 * d[0] + 4.0 * d[1]) / 6.0;
        assert!((overall - expected).abs() < 1e-12);
        // All users identical here, so overall equals each user's D.
        assert!((overall - d[0]).abs() < 1e-12);
    }

    #[test]
    fn saturated_used_computer_is_infinite() {
        // mu = [2, 8], total user flow on computer 0 = 3 > 2.
        let m = SystemModel::new(vec![2.0, 8.0], vec![3.0]).unwrap();
        let p = StrategyProfile::new(vec![Strategy::singleton(2, 0)]).unwrap();
        let d = user_response_time(&m, &p, 0).unwrap();
        assert!(d.is_infinite());
    }

    #[test]
    fn unused_saturated_computer_costs_nothing() {
        // User 0 saturates computer 0; user 1 avoids it entirely.
        let m = SystemModel::new(vec![2.0, 8.0], vec![3.0, 1.0]).unwrap();
        let p = StrategyProfile::new(vec![Strategy::singleton(2, 0), Strategy::singleton(2, 1)])
            .unwrap();
        let d = user_response_times(&m, &p).unwrap();
        assert!(d[0].is_infinite());
        assert!((d[1] - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_a_pure_strategy_is_exponential() {
        // All jobs on one computer: sojourn is Exp(mu - lambda), whose
        // variance equals the squared mean.
        let m = SystemModel::new(vec![4.0, 8.0], vec![2.0]).unwrap();
        let p = StrategyProfile::new(vec![Strategy::singleton(2, 1)]).unwrap();
        let mean = user_response_time(&m, &p, 0).unwrap();
        let var = user_response_variance(&m, &p, 0).unwrap();
        assert!((var - mean * mean).abs() < 1e-12);
    }

    #[test]
    fn mixing_across_unequal_speeds_adds_variance() {
        // A 50/50 mix over a fast and a slow computer has SCV > 1: the
        // mixture is more variable than any single exponential.
        let m = SystemModel::new(vec![4.0, 40.0], vec![2.0]).unwrap();
        let p = StrategyProfile::new(vec![Strategy::uniform(2)]).unwrap();
        let mean = user_response_time(&m, &p, 0).unwrap();
        let var = user_response_variance(&m, &p, 0).unwrap();
        assert!(
            var > mean * mean,
            "mixture SCV {} should exceed 1",
            var / (mean * mean)
        );
    }

    #[test]
    fn saturated_usage_gives_infinite_variance() {
        let m = SystemModel::new(vec![2.0, 8.0], vec![3.0]).unwrap();
        let p = StrategyProfile::new(vec![Strategy::singleton(2, 0)]).unwrap();
        assert!(user_response_variance(&m, &p, 0).unwrap().is_infinite());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let m = model();
        let p = StrategyProfile::replicated(Strategy::uniform(2), 3).unwrap();
        assert!(user_response_times(&m, &p).is_err());
        assert!(overall_response_time(&m, &p).is_err());
    }
}
