//! Convergence diagnostics for best-reply dynamics.
//!
//! Used by EXPERIMENTS.md's analysis of the paper's Figure-2 claim: the
//! asymptotic contraction rate `r` of the best-reply map is a property of
//! the equilibrium, not the starting point, so a closer initialization
//! (NASH_P) buys `log(norm0_P / norm0_0) / log r` iterations — a constant
//! — rather than a constant *factor*. [`ConvergenceReport`] extracts the
//! quantities behind that argument from a norm trace.

use lb_stats::IterationTrace;

/// Summary of a convergence-norm trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Norm after the first sweep.
    pub initial_norm: f64,
    /// Norm at termination.
    pub final_norm: f64,
    /// Sweeps performed.
    pub iterations: usize,
    /// Geometric contraction rate fitted to the tail (second half) of the
    /// trace; `None` if the tail is too short or non-positive.
    pub tail_rate: Option<f64>,
}

impl ConvergenceReport {
    /// Builds a report from a norm trace; `None` for an empty trace.
    pub fn from_trace(trace: &IterationTrace) -> Option<Self> {
        let values = trace.values();
        if values.is_empty() {
            return None;
        }
        let tail_start = values.len() / 2;
        let tail: IterationTrace = values[tail_start..].iter().copied().collect();
        Some(Self {
            initial_norm: values[0],
            final_norm: *values.last().expect("non-empty"),
            iterations: values.len(),
            tail_rate: tail.geometric_rate().filter(|r| r.is_finite() && *r > 0.0),
        })
    }

    /// Predicted additional sweeps to push the norm from `from` down to
    /// `tolerance` at contraction rate `rate` (`None` when the prediction
    /// is undefined: rate ≥ 1 or non-positive inputs).
    pub fn predict_iterations(from: f64, tolerance: f64, rate: f64) -> Option<u32> {
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(from) || !positive(tolerance) || !(0.0..1.0).contains(&rate) || rate == 0.0 {
            return None;
        }
        if from <= tolerance {
            return Some(0);
        }
        Some(((tolerance / from).ln() / rate.ln()).ceil() as u32)
    }

    /// Predicted iteration *saving* of starting at `norm_close` instead of
    /// `norm_far` for the same tolerance, at the report's tail rate — the
    /// constant-offset argument of EXPERIMENTS.md. `None` when the tail
    /// rate is unavailable.
    pub fn predicted_saving(&self, norm_far: f64, norm_close: f64) -> Option<f64> {
        let rate = self.tail_rate?;
        if !(0.0..1.0).contains(&rate) || rate == 0.0 || norm_far <= 0.0 || norm_close <= 0.0 {
            return None;
        }
        Some((norm_close / norm_far).ln() / rate.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SystemModel;
    use crate::nash::{Initialization, NashSolver};

    #[test]
    fn empty_trace_yields_none() {
        assert!(ConvergenceReport::from_trace(&IterationTrace::new()).is_none());
    }

    #[test]
    fn recovers_exact_geometric_decay() {
        let trace: IterationTrace = (0..24).map(|k| 8.0 * 0.5f64.powi(k)).collect();
        let r = ConvergenceReport::from_trace(&trace).unwrap();
        assert_eq!(r.iterations, 24);
        assert!((r.initial_norm - 8.0).abs() < 1e-12);
        assert!((r.tail_rate.unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prediction_matches_closed_form() {
        // From 1.0 to 1e-4 at rate 0.5: ceil(ln(1e-4)/ln(0.5)) = 14.
        assert_eq!(
            ConvergenceReport::predict_iterations(1.0, 1e-4, 0.5),
            Some(14)
        );
        assert_eq!(
            ConvergenceReport::predict_iterations(1e-5, 1e-4, 0.5),
            Some(0)
        );
        assert_eq!(ConvergenceReport::predict_iterations(1.0, 1e-4, 1.0), None);
        assert_eq!(ConvergenceReport::predict_iterations(0.0, 1e-4, 0.5), None);
    }

    #[test]
    fn explains_the_fig2_gap_on_the_real_system() {
        // The real NASH_0 / NASH_P iteration gap must be within a few
        // sweeps of the constant-offset prediction.
        let model = SystemModel::table1_system(0.6).unwrap();
        let zero = NashSolver::new(Initialization::Zero)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        let prop = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-4)
            .solve(&model)
            .unwrap();
        let report = ConvergenceReport::from_trace(zero.trace()).unwrap();
        let predicted = report
            .predicted_saving(zero.trace().values()[0], prop.trace().values()[0])
            .unwrap();
        let actual = zero.iterations() as f64 - prop.iterations() as f64;
        assert!(
            (predicted - actual).abs() <= 6.0,
            "predicted saving {predicted:.1} vs actual {actual}"
        );
    }

    #[test]
    fn rate_is_between_zero_and_one_for_contracting_dynamics() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let out = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-8)
            .solve(&model)
            .unwrap();
        let r = ConvergenceReport::from_trace(out.trace()).unwrap();
        let rate = r.tail_rate.unwrap();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        assert!(r.final_norm <= 1e-8);
    }
}
