//! Power-of-k-choices best replies for web-scale instances.
//!
//! The dense solver ([`crate::nash::NashSolver`]) scans all `n`
//! computers in every best reply, which is the right call at the paper's
//! n=16 — but at the ROADMAP's n=10⁴ / m=10⁵ target an O(mn) sweep
//! touches 10⁹ floats. This module trades the exact scan for the
//! *power of k choices*: each user water-fills over its **current
//! support plus `k` freshly sampled candidate servers**, so a sweep
//! costs O(m·(k + |support|) + n log n) and the flow matrix stays
//! sparse. Sparsity is *enforced*, not assumed: the exact equilibrium of
//! the splittable game is dense (a tiny user water-fills a sliver onto
//! every server above its threshold), so each reply is additionally
//! capped to the best [`SampledNashSolver::max_support`] candidates by
//! availability, bounding memory at `m · max_support` entries while the
//! concentration error lands in the certificate like any other gap.
//!
//! Sampling makes the *update* inexact, so the solver never trusts it:
//! convergence is decided exclusively by the certified regret bound of
//! [`crate::stopping`], whose `min_i c_i` term ranges over **all** `n`
//! computers (an O(n log n) argsort per sweep plus an O(|support|) walk
//! per user). Flow parked on a poorly sampled support therefore shows up
//! as residual regret until the sampler finds the better servers — the
//! sampling error folds into the same certificate, and an accepted run
//! carries exactly the same ε-Nash guarantee as the dense solver.
//!
//! Two mechanisms keep the sweep dynamics stable at scale, where
//! thousands of near-identical small users make pure Gauss–Seidel
//! best replies oscillate: updates are **damped**
//! ([`SampledNashSolver::damping`]) so each user only moves β of the
//! way to its exact reply, and the per-sweep update **order is
//! shuffled** (deterministically, keyed by `(seed, sweep)`) so that
//! headroom released by one user's update is re-absorbed by random
//! users instead of piling onto whoever happens to update next.
//! Neither changes what is accepted — acceptance is always the
//! certificate.
//!
//! Determinism: candidate draws and the order shuffle are keyed by
//! `(seed, sweep, user)` through a splitmix64 mix — never by thread —
//! and the only parallel phase (the certificate pass) is a
//! max-reduction, which is order-independent. Results are
//! byte-identical for any worker count, including the
//! `LB_SIM_THREADS` environment default.

use crate::best_reply::{water_fill_flows_into, WaterFillScratch};
use crate::error::GameError;
use crate::model::SystemModel;
use crate::stopping::{marginal_cost, Certificate};
use crate::strategy::{Strategy, StrategyProfile};
use lb_telemetry::Collector;
use std::fmt;
use std::sync::Arc;

/// A sparse flow row: `(computer index, flow)` pairs sorted by index.
pub type SparseRow = Vec<(u32, f64)>;

/// Configuration and entry point for the sampled (power-of-k-choices)
/// best-reply solver.
#[derive(Clone)]
pub struct SampledNashSolver {
    k: usize,
    max_support: usize,
    seed: u64,
    epsilon: f64,
    max_sweeps: u32,
    damping: f64,
    threads: usize,
    collector: Option<Arc<dyn Collector>>,
}

impl fmt::Debug for SampledNashSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SampledNashSolver")
            .field("k", &self.k)
            .field("max_support", &self.max_support)
            .field("seed", &self.seed)
            .field("epsilon", &self.epsilon)
            .field("max_sweeps", &self.max_sweeps)
            .field("damping", &self.damping)
            .field("threads", &self.threads)
            .field(
                "collector",
                &self.collector.as_ref().map(|_| "<dyn Collector>"),
            )
            .finish()
    }
}

impl Default for SampledNashSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SampledNashSolver {
    /// A solver with the web-scale defaults: `k = 32` candidates per
    /// reply, certified relative gap ε = `1e-3`, at most 256 sweeps
    /// (many small users certify in a handful of sweeps; a few large
    /// *equal* users interfere maximally and need the long tail), worker
    /// count from `LB_SIM_THREADS` (auto when unset).
    pub fn new() -> Self {
        Self {
            k: 32,
            max_support: 256,
            seed: 0x5EED_CAFE,
            epsilon: 1e-3,
            max_sweeps: 256,
            damping: 0.5,
            threads: 0,
            collector: None,
        }
    }

    /// Candidate servers sampled per best reply (clamped to ≥ 1). The
    /// user's current support is always included on top.
    pub fn samples(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Support cap per user (clamped to ≥ 1). Water-filling for a user
    /// much smaller than the servers spreads flow over *every* candidate
    /// (the exact equilibrium of this game is dense), so without a cap
    /// supports grow by up to `k` servers per sweep toward `m·n` memory.
    /// The cap keeps only the top `max_support` candidates by available
    /// rate — the maximum-capacity subset, so it never breaks a
    /// feasibility the full candidate set had — and bounds the flow
    /// matrix at `m · max_support` entries. The concentration error this
    /// introduces (≈ `φ_j / (max_support · headroom)` relative regret)
    /// is *not* hidden: it shows up in the certificate like any other
    /// gap, so ε stays a proved bound. Raise the cap if a run stalls
    /// just above your ε.
    pub fn max_support(mut self, cap: usize) -> Self {
        self.max_support = cap.max(1);
        self
    }

    /// Seed for the deterministic candidate draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Certified relative ε-Nash gap at which the solver accepts
    /// (the sampled solver's only stopping criterion — a norm-based
    /// rule would be unsound here, since a sweep that samples badly can
    /// move nothing while far from equilibrium).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sweep budget.
    pub fn max_sweeps(mut self, sweeps: u32) -> Self {
        self.max_sweeps = sweeps;
        self
    }

    /// Best-reply step size β ∈ (0, 1] (clamped; `1` = undamped exact
    /// replies, default `0.5`). Each update moves the row to
    /// `(1−β)·old + β·best reply`. Pure best replies oscillate at web
    /// scale: with thousands of near-identical users, a momentary
    /// headroom dip attracts an outsized grab from the next user in the
    /// sweep, which re-creates the dip elsewhere, and the concentration
    /// cascades around the system decaying far too slowly to certify.
    /// The blend attenuates every hand-off by β, which collapses the
    /// oscillation mode while leaving the fixed points untouched —
    /// `x = (1−β)x + β·BR(x)` holds exactly when `x = BR(x)`, so a
    /// damped stationary point is still an exact mutual best reply.
    pub fn damping(mut self, beta: f64) -> Self {
        self.damping = if beta.is_finite() {
            beta.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            1.0
        };
        self
    }

    /// Worker count for the certificate pass. `0` (the default) reads
    /// `LB_SIM_THREADS` with the same semantics as the simulation pool:
    /// unset, `0`, or `auto` use all cores; `1` forces sequential; any
    /// other `N` uses `N` workers. The result is byte-identical either
    /// way.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a telemetry collector (`sampled.start`, one
    /// `sampled.sweep` per sweep with the certificate and support-size
    /// stats, `sampled.done`). Events are emitted after the computation
    /// they describe; results are bit-identical with or without one.
    pub fn collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Runs sampled best-reply sweeps until the certified relative gap
    /// drops to ε.
    ///
    /// # Errors
    ///
    /// * [`GameError::ZeroIterationBudget`] when `max_sweeps == 0`.
    /// * [`GameError::DidNotConverge`] when the sweep budget runs out
    ///   (`final_norm` carries the last certified *relative* gap).
    /// * [`GameError::InfeasibleBestReply`] when even the full server
    ///   set cannot carry a user's demand (an infeasible model).
    pub fn solve(&self, model: &SystemModel) -> Result<SampledOutcome, GameError> {
        self.solve_inner(model, false)
    }

    /// Like [`SampledNashSolver::solve`], but exhausting the sweep
    /// budget returns the truncated outcome (with
    /// [`SampledOutcome::converged`]` == false`) and its per-sweep
    /// certificates instead of discarding them.
    ///
    /// # Errors
    ///
    /// Same as [`SampledNashSolver::solve`] minus
    /// [`GameError::DidNotConverge`].
    pub fn solve_partial(&self, model: &SystemModel) -> Result<SampledOutcome, GameError> {
        self.solve_inner(model, true)
    }

    fn solve_inner(
        &self,
        model: &SystemModel,
        allow_partial: bool,
    ) -> Result<SampledOutcome, GameError> {
        if self.max_sweeps == 0 {
            return Err(GameError::ZeroIterationBudget);
        }
        let m = model.num_users();
        let n = model.num_computers();
        let threads = resolve_threads(self.threads);

        let mut rows: Vec<SparseRow> = vec![SparseRow::new(); m];
        let mut loads = vec![0.0; n];
        let mut prev_d = vec![0.0; m];
        let mut headroom = vec![0.0; n];
        let mut by_headroom: Vec<u32> = (0..n as u32).collect();
        let mut cand: Vec<u32> = Vec::new();
        let mut avail: Vec<f64> = Vec::new();
        let mut sel: Vec<u32> = Vec::new();
        let mut eff: Vec<f64> = Vec::new();
        let mut picked: Vec<(u32, f64)> = Vec::new();
        let mut reply: Vec<f64> = Vec::new();
        let mut blend: Vec<f64> = Vec::new();
        let mut wf = WaterFillScratch::default();
        let mut certificates: Vec<Certificate> = Vec::new();
        let mut norm_trace: Vec<f64> = Vec::new();

        let collect = lb_telemetry::enabled(self.collector.as_ref());
        if let Some(c) = collect {
            c.emit(
                "sampled.start",
                &[
                    ("users", m.into()),
                    ("computers", n.into()),
                    ("k", self.k.into()),
                    ("max_support", self.max_support.into()),
                    ("seed", self.seed.into()),
                    ("epsilon", self.epsilon.into()),
                    ("max_sweeps", self.max_sweeps.into()),
                    ("damping", self.damping.into()),
                    ("threads", threads.into()),
                ],
            );
        }

        let mut order_js: Vec<u32> = (0..m as u32).collect();
        // Resource accounting: one best reply per user per sweep, but
        // water-fill invocations also count feasibility-widening
        // retries, so the two diverge on under-sampled models.
        let mut best_replies: u64 = 0;
        let mut water_fills: u64 = 0;

        for sweep in 0..self.max_sweeps {
            // Deterministic per-sweep shuffle of the update order
            // (Fisher–Yates keyed by `(seed, sweep)` — never by thread).
            // A *fixed* order lets concentration persist: when a user's
            // update releases excess flow from a server, the headroom
            // dip it leaves is re-absorbed by the users updating
            // immediately after it, so the excess hands off to the same
            // index-adjacent clique sweep after sweep instead of
            // dispersing. Rotating the order spreads each hand-off over
            // random users, pulling the worst per-user regret down to
            // the population mean.
            let shuf = draw_key(self.seed ^ 0x5355_4646_4C45_u64, sweep, 0);
            for t in (1..m).rev() {
                let r = (splitmix64(shuf.wrapping_add(t as u64)) % (t as u64 + 1)) as usize;
                order_js.swap(t, r);
            }
            let mut norm = 0.0;
            for &ju in &order_js {
                let j = ju as usize;
                best_replies += 1;
                let phi = model.user_rate(j);
                // Lift the user's own flow out of the aggregate so the
                // candidate availabilities are what *this* user sees.
                for &(i, x) in &rows[j] {
                    loads[i as usize] -= x;
                }
                // Candidate set: current support ∪ k fresh draws, with a
                // feasibility-widening loop — if the sampled capacity
                // cannot carry φ_j, double the draw until it can (the
                // full server set always can on a feasible model, since
                // the other users occupy Φ − φ_j < Σμ − φ_j).
                let mut draw = self.k;
                loop {
                    cand.clear();
                    cand.extend(rows[j].iter().map(|&(i, _)| i));
                    if draw >= n {
                        cand.clear();
                        cand.extend(0..n as u32);
                    } else {
                        let base = draw_key(self.seed, sweep, j as u64);
                        for t in 0..draw {
                            cand.push((splitmix64(base.wrapping_add(t as u64)) % n as u64) as u32);
                        }
                    }
                    cand.sort_unstable();
                    cand.dedup();
                    avail.clear();
                    avail.extend(
                        cand.iter()
                            .map(|&i| model.computer_rate(i as usize) - loads[i as usize]),
                    );
                    if cand.len() > self.max_support {
                        // Keep the top `max_support` candidates by
                        // availability — essentially the maximum-capacity
                        // subset, so any feasibility the full set had
                        // survives the cut. Newcomers are admitted with
                        // hysteresis: a fresh sample must beat an
                        // incumbent by a relative margin (ε/8, well
                        // inside the certification slack) to displace
                        // it. Without the margin, near-equalized
                        // headrooms make every sweep swap near-tied
                        // servers, and that churn sustains a staleness
                        // regret floor that never certifies.
                        let admit = 1.0 / (1.0 + self.epsilon / 8.0);
                        eff.clear();
                        for (p, &a) in avail.iter().enumerate() {
                            let incumbent =
                                rows[j].binary_search_by_key(&cand[p], |&(i, _)| i).is_ok();
                            eff.push(if incumbent { a } else { a * admit });
                        }
                        sel.clear();
                        sel.extend(0..cand.len() as u32);
                        sel.sort_unstable_by(|&p, &q| {
                            eff[q as usize]
                                .total_cmp(&eff[p as usize])
                                .then(cand[p as usize].cmp(&cand[q as usize]))
                        });
                        sel.truncate(self.max_support);
                        picked.clear();
                        picked.extend(sel.iter().map(|&p| (cand[p as usize], avail[p as usize])));
                        picked.sort_unstable_by_key(|&(i, _)| i);
                        cand.clear();
                        avail.clear();
                        for &(i, a) in &picked {
                            cand.push(i);
                            avail.push(a);
                        }
                    }
                    water_fills += 1;
                    match water_fill_flows_into(&avail, phi, &mut wf, &mut reply) {
                        Ok(()) => break,
                        Err(GameError::InfeasibleBestReply { .. }) if draw < n => {
                            draw = draw.saturating_mul(2).min(n);
                        }
                        Err(e) => return Err(stamp_user(e, j)),
                    }
                }
                // Damped step: `(1−β)·old + β·reply` over the selected
                // candidates (see [`SampledNashSolver::damping`]). Dust
                // below `1e-6·φ` is dropped and the row rescaled to
                // carry exactly φ_j again — the rescale also reabsorbs
                // the mass of any entry the support cap evicted.
                let beta = self.damping;
                if beta < 1.0 {
                    let old = &rows[j];
                    let mut p = 0usize;
                    blend.clear();
                    for (slot, &i) in cand.iter().enumerate() {
                        while p < old.len() && old[p].0 < i {
                            p += 1;
                        }
                        let x_old = if p < old.len() && old[p].0 == i {
                            old[p].1
                        } else {
                            0.0
                        };
                        let x = (1.0 - beta) * x_old + beta * reply[slot];
                        blend.push(if x >= 1e-6 * phi { x } else { 0.0 });
                    }
                    let sum: f64 = blend.iter().sum();
                    let scale = phi / sum;
                    rows[j].clear();
                    for (slot, &i) in cand.iter().enumerate() {
                        let x = scale * blend[slot];
                        if x > 0.0 {
                            rows[j].push((i, x));
                            loads[i as usize] += x;
                        }
                    }
                } else {
                    rows[j].clear();
                    for (slot, &i) in cand.iter().enumerate() {
                        let x = reply[slot];
                        if x > 0.0 {
                            rows[j].push((i, x));
                            loads[i as usize] += x;
                        }
                    }
                }
                let mut d = 0.0;
                for &(i, x) in &rows[j] {
                    d += x / phi / (model.computer_rate(i as usize) - loads[i as usize]);
                }
                norm += (d - prev_d[j]).abs();
                prev_d[j] = d;
            }

            // Certificate pass: exact min marginal cost over ALL n
            // computers per user — one argsort of headrooms, then each
            // user walks past its (tiny) support to the best outsider.
            for (h, (&mu, &l)) in headroom
                .iter_mut()
                .zip(model.computer_rates().iter().zip(&loads))
            {
                *h = mu - l;
            }
            by_headroom.sort_unstable_by(|&a, &b| {
                headroom[b as usize]
                    .total_cmp(&headroom[a as usize])
                    .then(a.cmp(&b))
            });
            let cert = sparse_certificate(model, &rows, &headroom, &by_headroom, threads);
            certificates.push(cert);
            norm_trace.push(norm);
            let converged = cert.relative <= self.epsilon;
            if let Some(c) = collect {
                let (s_min, s_max, s_mean) = support_stats(&rows);
                c.emit(
                    "sampled.sweep",
                    &[
                        ("iter", (sweep + 1).into()),
                        ("norm", norm.into()),
                        ("cert_gap", cert.absolute.into()),
                        ("cert_rel", cert.relative.into()),
                        ("support_min", s_min.into()),
                        ("support_max", s_max.into()),
                        ("support_mean", s_mean.into()),
                        ("converged", converged.into()),
                    ],
                );
            }
            if converged || (sweep + 1 == self.max_sweeps && allow_partial) {
                if let Some(c) = collect {
                    c.emit(
                        "sampled.done",
                        &[
                            ("iterations", (sweep + 1).into()),
                            ("converged", converged.into()),
                            ("cert_rel", cert.relative.into()),
                        ],
                    );
                    c.emit(
                        "account.sampled",
                        &[
                            ("sweeps", (sweep + 1).into()),
                            ("best_replies", best_replies.into()),
                            ("water_fills", water_fills.into()),
                        ],
                    );
                }
                return Ok(SampledOutcome {
                    flows: rows,
                    iterations: sweep + 1,
                    converged,
                    certificates,
                    norm_trace,
                    total_response_time: prev_d.iter().sum(),
                });
            }
        }
        let final_rel = certificates.last().map_or(f64::INFINITY, |c| c.relative);
        if let Some(c) = collect {
            c.emit(
                "sampled.done",
                &[
                    ("iterations", self.max_sweeps.into()),
                    ("converged", false.into()),
                    ("cert_rel", final_rel.into()),
                ],
            );
            c.emit(
                "account.sampled",
                &[
                    ("sweeps", self.max_sweeps.into()),
                    ("best_replies", best_replies.into()),
                    ("water_fills", water_fills.into()),
                ],
            );
        }
        Err(GameError::DidNotConverge {
            iterations: self.max_sweeps,
            final_norm: final_rel,
        })
    }
}

/// Result of a sampled run. Flows stay sparse — at the web-scale target
/// a dense `m × n` profile would be 10⁹ floats, while equilibrium
/// supports are a handful of servers per user.
#[derive(Debug, Clone)]
pub struct SampledOutcome {
    flows: Vec<SparseRow>,
    iterations: u32,
    converged: bool,
    certificates: Vec<Certificate>,
    norm_trace: Vec<f64>,
    total_response_time: f64,
}

impl SampledOutcome {
    /// Per-user sparse flow rows (`(computer, jobs/s)`, sorted by
    /// computer index).
    pub fn flows(&self) -> &[SparseRow] {
        &self.flows
    }

    /// Sweeps performed.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Whether the certified gap reached ε (always true from
    /// [`SampledNashSolver::solve`]).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Per-sweep regret certificates, in sweep order.
    pub fn certificates(&self) -> &[Certificate] {
        &self.certificates
    }

    /// The final sweep's certificate — the proved ε-Nash bound the run
    /// was accepted (or truncated) at.
    pub fn certified_gap(&self) -> Certificate {
        *self
            .certificates
            .last()
            .expect("a returned outcome ran at least one sweep")
    }

    /// Per-sweep response-time norms `Σ_j |ΔD_j|` (diagnostic only —
    /// never the stopping criterion here).
    pub fn norm_trace(&self) -> &[f64] {
        &self.norm_trace
    }

    /// `Σ_j D_j` at the final profile.
    pub fn total_response_time(&self) -> f64 {
        self.total_response_time
    }

    /// Mean per-user expected response time at the final profile.
    pub fn mean_response_time(&self) -> f64 {
        self.total_response_time / self.flows.len() as f64
    }

    /// Total support size (number of nonzero flows across all users).
    pub fn support_size(&self) -> usize {
        self.flows.iter().map(Vec::len).sum()
    }

    /// Densifies into a [`StrategyProfile`] — for cross-checking against
    /// the dense solver on small instances. Don't call this at n=10⁴ /
    /// m=10⁵ (that's the dense representation this solver exists to
    /// avoid).
    ///
    /// # Errors
    ///
    /// Propagates strategy validation (cannot fire on a returned
    /// outcome's conserved flows).
    pub fn to_profile(&self, model: &SystemModel) -> Result<StrategyProfile, GameError> {
        let n = model.num_computers();
        let mut strategies = Vec::with_capacity(self.flows.len());
        for (j, row) in self.flows.iter().enumerate() {
            let phi = model.user_rate(j);
            let mut fractions = vec![0.0; n];
            for &(i, x) in row {
                fractions[i as usize] = x / phi;
            }
            strategies.push(Strategy::new(fractions)?);
        }
        StrategyProfile::new(strategies)
    }
}

/// Worker count with the `LB_SIM_THREADS` semantics of
/// `lb_sim::parallel` (duplicated here — `lb-game` sits below `lb-sim`
/// in the crate graph and cannot depend on it).
fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("LB_SIM_THREADS")
        .ok()
        .and_then(|v| match v.trim() {
            "" | "auto" => None,
            other => other.parse::<usize>().ok(),
        })
        .filter(|&x| x > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// splitmix64 finalizer — the draw stream is a pure function of
/// `(seed, sweep, user, t)`, never of thread or timing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn draw_key(seed: u64, sweep: u32, user: u64) -> u64 {
    splitmix64(seed ^ splitmix64(u64::from(sweep)) ^ user.wrapping_mul(0xA24B_AED4_963E_E407))
}

fn stamp_user(e: GameError, j: usize) -> GameError {
    match e {
        GameError::InfeasibleBestReply {
            available, demand, ..
        } => GameError::InfeasibleBestReply {
            user: j,
            available,
            demand,
        },
        other => other,
    }
}

fn support_stats(rows: &[SparseRow]) -> (u64, u64, f64) {
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut total = 0u64;
    for row in rows {
        let len = row.len() as u64;
        min = min.min(len);
        max = max.max(len);
        total += len;
    }
    if rows.is_empty() {
        (0, 0, 0.0)
    } else {
        (min, max, total as f64 / rows.len() as f64)
    }
}

/// One user's regret against the sparse state: the support loop plus a
/// walk down the headroom order to the best computer *outside* the
/// support (`min_i c_i` must range over all `n` for the bound to hold —
/// a cheaper support-only min would silently hide sampling error).
fn sparse_user_regret(
    phi: f64,
    row: &[(u32, f64)],
    headroom: &[f64],
    by_headroom: &[u32],
) -> (f64, f64) {
    let mut weighted = 0.0;
    let mut min_c = f64::INFINITY;
    let mut d = 0.0;
    for &(i, x) in row {
        let h = headroom[i as usize];
        if h <= 0.0 {
            return (f64::INFINITY, f64::INFINITY);
        }
        let c = marginal_cost(h, x);
        weighted += x / phi * c;
        d += x / phi / h;
        min_c = min_c.min(c);
    }
    for &i in by_headroom {
        let h = headroom[i as usize];
        if h <= 0.0 {
            break;
        }
        if row.binary_search_by_key(&i, |&(idx, _)| idx).is_err() {
            // Off-support cost is 1/h, minimized by the largest
            // headroom — the first outsider in descending order wins.
            min_c = min_c.min(1.0 / h);
            break;
        }
    }
    if !min_c.is_finite() {
        return (if weighted > 0.0 { f64::INFINITY } else { 0.0 }, d);
    }
    ((weighted - min_c).max(0.0), d)
}

/// The sweep certificate, max-reduced over users across `threads`
/// workers. Max is order-independent, so the fan-out is byte-identical
/// to the sequential reduction at any worker count.
fn sparse_certificate(
    model: &SystemModel,
    rows: &[SparseRow],
    headroom: &[f64],
    by_headroom: &[u32],
    threads: usize,
) -> Certificate {
    let m = rows.len();
    if threads <= 1 || m < 2 {
        let mut cert = Certificate::zero();
        for (j, row) in rows.iter().enumerate() {
            let (r, d) = sparse_user_regret(model.user_rate(j), row, headroom, by_headroom);
            cert.absorb(r, d);
        }
        return cert;
    }
    let chunk = m.div_ceil(threads.min(m));
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, part) in rows.chunks(chunk).enumerate() {
            let start = t * chunk;
            handles.push(s.spawn(move |_| {
                let mut local = Certificate::zero();
                for (off, row) in part.iter().enumerate() {
                    let (r, d) = sparse_user_regret(
                        model.user_rate(start + off),
                        row,
                        headroom,
                        by_headroom,
                    );
                    local.absorb(r, d);
                }
                local
            }));
        }
        let mut cert = Certificate::zero();
        for h in handles {
            let local = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            cert.absolute = cert.absolute.max(local.absolute);
            cert.relative = cert.relative.max(local.relative);
        }
        cert
    })
    .unwrap_or_else(|p| std::panic::resume_unwind(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::epsilon_nash_gap;
    use crate::nash::{Initialization, NashSolver};
    use crate::stopping::StoppingRule;

    fn small_model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 25.0]).unwrap()
    }

    fn assert_outcomes_bit_identical(a: &SampledOutcome, b: &SampledOutcome, label: &str) {
        assert_eq!(a.iterations(), b.iterations(), "{label}: iterations");
        for (ca, cb) in a.certificates().iter().zip(b.certificates()) {
            assert_eq!(
                ca.absolute.to_bits(),
                cb.absolute.to_bits(),
                "{label}: certificate"
            );
            assert_eq!(
                ca.relative.to_bits(),
                cb.relative.to_bits(),
                "{label}: certificate"
            );
        }
        assert_eq!(a.flows().len(), b.flows().len(), "{label}: users");
        for (ra, rb) in a.flows().iter().zip(b.flows()) {
            assert_eq!(ra.len(), rb.len(), "{label}: support size");
            for (&(ia, xa), &(ib, xb)) in ra.iter().zip(rb) {
                assert_eq!(ia, ib, "{label}: support index");
                assert_eq!(xa.to_bits(), xb.to_bits(), "{label}: flow bits");
            }
        }
    }

    #[test]
    fn converges_and_certificate_bounds_the_exact_gap() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let out = SampledNashSolver::new()
            .epsilon(1e-4)
            .solve(&model)
            .unwrap();
        assert!(out.converged());
        let cert = out.certified_gap();
        assert!(cert.relative <= 1e-4);
        let profile = out.to_profile(&model).unwrap();
        let gap = epsilon_nash_gap(&model, &profile).unwrap();
        assert!(
            cert.absolute + 1e-9 * (1.0 + gap) >= gap,
            "certificate {} below exact gap {gap}",
            cert.absolute
        );
    }

    #[test]
    fn agrees_with_the_dense_solver() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let dense = NashSolver::new(Initialization::Proportional)
            .stopping_rule(StoppingRule::CertifiedGap { epsilon: 1e-8 })
            .max_iterations(2000)
            .solve(&model)
            .unwrap();
        let sampled = SampledNashSolver::new()
            .epsilon(1e-8)
            .max_sweeps(2000)
            .solve(&model)
            .unwrap();
        let profile = sampled.to_profile(&model).unwrap();
        let dist = dense.profile().max_l1_distance(&profile).unwrap();
        assert!(dist < 1e-3, "solvers disagree by {dist}");
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let model = SystemModel::with_equal_users(SystemModel::table1_rates(), 12, 0.7).unwrap();
        let reference = SampledNashSolver::new().threads(1).solve(&model).unwrap();
        for threads in [2, 8] {
            let run = SampledNashSolver::new()
                .threads(threads)
                .solve(&model)
                .unwrap();
            assert_outcomes_bit_identical(&reference, &run, &format!("{threads} threads"));
        }
    }

    #[test]
    fn lb_sim_threads_env_controls_the_default_and_preserves_bits() {
        // One test mutates the env var (serially, restoring it) so the
        // knob named in the docs is actually exercised end to end.
        let model = small_model();
        let saved = std::env::var("LB_SIM_THREADS").ok();
        let mut runs = Vec::new();
        for v in ["1", "2", "8"] {
            std::env::set_var("LB_SIM_THREADS", v);
            assert_eq!(resolve_threads(0), v.parse::<usize>().unwrap());
            runs.push(SampledNashSolver::new().solve(&model).unwrap());
        }
        match saved {
            Some(v) => std::env::set_var("LB_SIM_THREADS", v),
            None => std::env::remove_var("LB_SIM_THREADS"),
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert_outcomes_bit_identical(&runs[0], run, &format!("env run {i}"));
        }
        assert!(resolve_threads(3) == 3, "explicit threads beat the env");
    }

    #[test]
    fn seed_is_deterministic_and_different_seeds_still_converge() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let a = SampledNashSolver::new().seed(7).solve(&model).unwrap();
        let b = SampledNashSolver::new().seed(7).solve(&model).unwrap();
        assert_outcomes_bit_identical(&a, &b, "same seed");
        let c = SampledNashSolver::new().seed(8).solve(&model).unwrap();
        assert!(c.converged());
        assert!(c.certified_gap().relative <= 1e-3);
    }

    #[test]
    fn widening_recovers_from_an_undersampled_candidate_set() {
        // One server cannot carry φ = 25, so k = 1 must widen (support
        // starts empty on the first reply: the single draw is the whole
        // candidate set until the doubling kicks in).
        let model = SystemModel::new(vec![10.0; 4], vec![25.0]).unwrap();
        let out = SampledNashSolver::new().samples(1).solve(&model).unwrap();
        assert!(out.converged());
        assert!(out.flows()[0].len() >= 3, "needs ≥ 3 servers for φ = 25");
        let total: f64 = out.flows()[0].iter().map(|&(_, x)| x).sum();
        assert!((total - 25.0).abs() < 1e-9);
    }

    #[test]
    fn scale_invariant_stopping() {
        let base = SystemModel::table1_system(0.6).unwrap();
        let reference = SampledNashSolver::new().solve(&base).unwrap();
        for c in [0.01, 100.0] {
            let scaled = SystemModel::new(
                base.computer_rates().iter().map(|r| r * c).collect(),
                base.user_rates().iter().map(|r| r * c).collect(),
            )
            .unwrap();
            let run = SampledNashSolver::new().solve(&scaled).unwrap();
            assert_eq!(run.iterations(), reference.iterations(), "scale {c}");
            assert!(run.certified_gap().relative <= 1e-3, "scale {c}");
        }
    }

    #[test]
    fn zero_sweep_budget_is_a_typed_error() {
        let model = small_model();
        let solver = SampledNashSolver::new().max_sweeps(0);
        assert_eq!(
            solver.solve(&model).unwrap_err(),
            GameError::ZeroIterationBudget
        );
        assert_eq!(
            solver.solve_partial(&model).unwrap_err(),
            GameError::ZeroIterationBudget
        );
    }

    #[test]
    fn solve_partial_keeps_the_truncated_outcome() {
        let model = SystemModel::table1_system(0.6).unwrap();
        let out = SampledNashSolver::new()
            .epsilon(0.0)
            .max_sweeps(3)
            .solve_partial(&model)
            .unwrap();
        assert!(!out.converged());
        assert_eq!(out.iterations(), 3);
        assert_eq!(out.certificates().len(), 3);
        let err = SampledNashSolver::new()
            .epsilon(0.0)
            .max_sweeps(3)
            .solve(&model)
            .unwrap_err();
        assert!(matches!(
            err,
            GameError::DidNotConverge { iterations: 3, .. }
        ));
    }

    #[test]
    fn sweep_telemetry_reports_certificates_and_supports() {
        use lb_telemetry::{FieldValue, MemoryCollector};
        let model = SystemModel::table1_system(0.6).unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let out = SampledNashSolver::new()
            .collector(mem.clone())
            .solve(&model)
            .unwrap();
        assert_eq!(mem.count("sampled.start"), 1);
        assert_eq!(mem.count("sampled.sweep"), out.iterations() as usize);
        assert_eq!(mem.count("sampled.done"), 1);
        assert_eq!(mem.count("account.sampled"), 1);
        let events = mem.events();
        let (_, acct) = events
            .iter()
            .find(|(name, _)| *name == "account.sampled")
            .unwrap();
        let acct_u64 = |k: &str| match acct.iter().find(|(key, _)| *key == k).unwrap().1 {
            FieldValue::U64(v) => v,
            ref other => panic!("{k} field was {other:?}"),
        };
        let expected_replies = u64::from(out.iterations()) * model.num_users() as u64;
        assert_eq!(acct_u64("best_replies"), expected_replies);
        assert!(
            acct_u64("water_fills") >= expected_replies,
            "widening retries only ever add water-fills"
        );
        let (_, last_sweep) = events
            .iter()
            .rev()
            .find(|(name, _)| *name == "sampled.sweep")
            .unwrap();
        let field = |k: &str| {
            last_sweep
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        match field("cert_rel") {
            FieldValue::F64(rel) => {
                assert_eq!(rel.to_bits(), out.certified_gap().relative.to_bits());
            }
            other => panic!("cert_rel was {other:?}"),
        }
        assert_eq!(field("converged"), FieldValue::Bool(true));
        match field("support_max") {
            FieldValue::U64(s) => assert!(s >= 1 && s <= model.num_computers() as u64),
            other => panic!("support_max was {other:?}"),
        }
        // Attaching the collector must not perturb the solve.
        let plain = SampledNashSolver::new().solve(&model).unwrap();
        assert_outcomes_bit_identical(&plain, &out, "collector attached");
    }

    fn many_small_users(n: usize, m: usize, rho: f64) -> SystemModel {
        let rates: Vec<f64> = (0..n).map(|i| 10.0 + (i % 97) as f64).collect();
        let total: f64 = rates.iter().sum();
        let phi = rho * total / m as f64;
        SystemModel::new(rates, vec![phi; m]).unwrap()
    }

    #[test]
    fn capped_instance_stays_sparse_and_certifies() {
        // m ≫ n small users force the support cap to bind (the exact
        // equilibrium is dense), sized to stay fast in debug builds; the
        // full-shape rehearsal below and the n=10⁴/m=10⁵ bench run the
        // same assertions at scale. Utilization 0.3 keeps the cap's
        // structural regret floor (≈ ρ/(1−ρ) · n/(m·cap)) well under ε.
        let model = many_small_users(100, 1000, 0.3);
        let out = SampledNashSolver::new()
            .max_support(64)
            .solve(&model)
            .unwrap();
        assert!(out.converged());
        assert!(out.certified_gap().relative <= 1e-3);
        assert!(
            out.flows().iter().map(Vec::len).max().unwrap() <= 64,
            "a row exceeded the cap"
        );
    }

    #[test]
    #[ignore = "release-build soak: ~3 s optimized, minutes unoptimized"]
    fn large_instance_stays_sparse_and_certifies() {
        // A scaled-down rehearsal of the BENCH_nash_large shape (the
        // full n=10⁴/m=10⁵ instance runs in the bench suite): m ≫ n
        // small users, supports bounded by the default cap, acceptance
        // on a certified bound.
        let m = 4000;
        let model = many_small_users(400, m, 0.6);
        let out = SampledNashSolver::new().solve(&model).unwrap();
        assert!(out.converged());
        assert!(out.certified_gap().relative <= 1e-3);
        let mean_support = out.support_size() as f64 / m as f64;
        assert!(
            mean_support <= 256.0,
            "support cap violated: mean {mean_support}"
        );
        assert!(
            out.flows().iter().map(Vec::len).max().unwrap() <= 256,
            "a row exceeded the cap"
        );
    }
}
