//! The replication driver: the paper's "each run was replicated five
//! times with different random number streams and the results averaged
//! over replications".

use crate::parallel::ParallelRunner;
use crate::scenario::{run_replication_spanned, SimulationConfig};
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;
use lb_stats::{jain_index, ReplicationPlan, ReplicationSet, SampleSummary};
use lb_telemetry::{Collector, Span};
use std::sync::Arc;

/// Cross-replication estimates for a simulated scheme.
#[derive(Debug, Clone)]
pub struct SimulatedMetrics {
    /// Per-user mean response times with confidence intervals.
    pub user_summaries: Vec<SampleSummary>,
    /// System-wide (job-averaged) mean response time summary.
    pub system_summary: SampleSummary,
    /// Jain fairness index of the cross-replication per-user means.
    pub fairness: f64,
    /// Whether every metric met the plan's relative-standard-error bound
    /// (the paper keeps this under 5%).
    pub precise: bool,
    /// Worst relative standard error observed.
    pub worst_relative_error: f64,
    /// Replications performed.
    pub replications: u32,
    /// Cross-replication mean of the per-replication p95 response time
    /// (exact nearest-rank quantile of the measured responses; the
    /// stationary mixture tail on the analytic fast path) — the tail the
    /// mean hides.
    pub system_p95: f64,
}

impl SimulatedMetrics {
    /// Cross-replication per-user mean response times.
    pub fn user_means(&self) -> Vec<f64> {
        self.user_summaries.iter().map(|s| s.mean).collect()
    }
}

/// Exact nearest-rank `q`-quantile of `samples` (reorders them in
/// place). `NaN` when empty — a replication too short to measure jobs.
fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
    let (_, value, _) = samples.select_nth_unstable_by(rank - 1, |a, b| {
        a.partial_cmp(b).expect("response times are never NaN")
    });
    *value
}

/// Simulates `profile` on `model` under a replication plan, fanning the
/// replications out over [`ParallelRunner::from_env`] (set
/// `LB_SIM_THREADS=1` to force the sequential path). Each replication
/// draws from its own seeded streams and results are folded in
/// replication order, so the output is byte-identical at any thread
/// count.
///
/// # Errors
///
/// Propagates scenario errors (shape mismatches, saturated profiles).
pub fn simulate_profile(
    model: &SystemModel,
    profile: &StrategyProfile,
    plan: &ReplicationPlan,
    config: SimulationConfig,
) -> Result<SimulatedMetrics, GameError> {
    simulate_profile_with(&ParallelRunner::from_env(), model, profile, plan, config)
}

/// [`simulate_profile`] with an explicit runner (tests pin thread counts
/// through this entry point).
///
/// # Errors
///
/// Propagates scenario errors (shape mismatches, saturated profiles).
pub fn simulate_profile_with(
    runner: &ParallelRunner,
    model: &SystemModel,
    profile: &StrategyProfile,
    plan: &ReplicationPlan,
    config: SimulationConfig,
) -> Result<SimulatedMetrics, GameError> {
    simulate_profile_traced(runner, model, profile, plan, config, None)
}

/// [`simulate_profile_with`] with an optional telemetry collector. When
/// collecting, the fold emits one `sim.replication {rep, seed,
/// system_mean, p95, jobs}` event per replication (in replication order,
/// after the fan-out joins — so per-worker `runner.worker` events from
/// the pool precede them) and a closing `sim.summary`, and the run is
/// wrapped in a causal span tree: `sim.run` → `runner.pool` →
/// `runner.worker` → `sim.replication` → `des.batch`. Collection is
/// purely observational: the returned metrics are bit-identical with or
/// without a collector attached.
///
/// # Errors
///
/// Propagates scenario errors (shape mismatches, saturated profiles).
pub fn simulate_profile_traced(
    runner: &ParallelRunner,
    model: &SystemModel,
    profile: &StrategyProfile,
    plan: &ReplicationPlan,
    config: SimulationConfig,
    collector: Option<&Arc<dyn Collector>>,
) -> Result<SimulatedMetrics, GameError> {
    let m = model.num_users();
    let mut names: Vec<String> = (0..m).map(|j| format!("user{j}")).collect();
    names.push("system".into());
    let mut set = ReplicationSet::new(names, plan.confidence);

    // The analytic fast path never streams per-job responses, so the P²
    // estimator would come back empty; use the stationary mixture tail
    // instead (same quantity the per-job estimate converges to).
    let analytic_p95 = if config.is_analytic() {
        Some(crate::analytic::analytic_system_p95(model, profile)?)
    } else {
        None
    };

    // Root span for the whole simulation study; worker spans from the
    // pool and one `sim.replication` span per task nest under it, and
    // each replication's DES engine hangs its `des.batch` spans off its
    // replication span.
    let sim_span = Span::root(
        collector,
        "sim.run",
        &[
            ("users", m.into()),
            ("replications", plan.replications.into()),
            ("target_jobs", config.target_jobs.into()),
        ],
    );
    let sim_handle = sim_span.as_ref().map(Span::handle);

    // Fan out: one task per replication, each fully determined by its
    // seed. The fold below happens in replication order.
    let replications = runner.try_run_spanned(
        plan.replications as usize,
        |r, worker| {
            let seed = plan.seed_for(r as u32);
            let rep_span = worker.map(|w| {
                w.child(
                    "sim.replication",
                    &[("rep", (r as u64).into()), ("seed", seed.into())],
                )
            });
            let rep_handle = rep_span.as_ref().map(Span::handle);
            // The sharded engine delivers responses grouped by station,
            // which order-sensitive streaming estimators (like P²)
            // misread badly — collect and take the exact quantile, which
            // is order-insensitive and costs a sort, trivial next to the
            // simulation itself.
            let mut responses: Vec<f64> = Vec::new();
            let result = run_replication_spanned(
                model,
                profile,
                config,
                seed,
                collector,
                rep_handle.as_ref(),
                |_, resp| {
                    responses.push(resp);
                },
            )?;
            if let Some(span) = rep_span {
                span.close_with(&[("jobs", result.jobs_generated.into())]);
            }
            let mut values = result.user_means;
            values.push(result.system_mean);
            Ok::<_, GameError>((
                values,
                analytic_p95.unwrap_or_else(|| exact_quantile(&mut responses, 0.95)),
                result.jobs_generated,
            ))
        },
        collector,
        sim_handle.as_ref(),
    )?;

    let collect = lb_telemetry::enabled(collector);
    let mut p95_acc = 0.0;
    for (r, (values, p95, jobs)) in replications.iter().enumerate() {
        set.record(values);
        p95_acc += p95;
        if let Some(c) = collect {
            c.emit(
                "sim.replication",
                &[
                    ("rep", (r as u64).into()),
                    ("seed", plan.seed_for(r as u32).into()),
                    ("system_mean", (*values.last().expect("system mean")).into()),
                    ("p95", (*p95).into()),
                    ("jobs", (*jobs).into()),
                ],
            );
        }
    }
    let system_p95 = p95_acc / f64::from(plan.replications);

    let summaries = set
        .summaries()
        .expect("at least one replication was recorded");
    let (user_summaries, system_summary) = {
        let mut s = summaries;
        let system = s.pop().expect("system metric present");
        (s, system)
    };
    let user_means: Vec<f64> = user_summaries.iter().map(|s| s.mean).collect();
    let metrics = SimulatedMetrics {
        fairness: jain_index(&user_means).unwrap_or(f64::NAN),
        precise: set.meets_precision(plan.max_relative_error),
        worst_relative_error: set.worst_relative_error(),
        user_summaries,
        system_summary,
        replications: plan.replications,
        system_p95,
    };
    if let Some(c) = collect {
        c.emit(
            "sim.summary",
            &[
                ("replications", metrics.replications.into()),
                ("system_mean", metrics.system_summary.mean.into()),
                ("system_p95", metrics.system_p95.into()),
                ("fairness", metrics.fairness.into()),
                ("precise", metrics.precise.into()),
                ("worst_rel_err", metrics.worst_relative_error.into()),
            ],
        );
    }
    if let Some(span) = sim_span {
        span.close_with(&[
            ("replications", metrics.replications.into()),
            ("system_mean", metrics.system_summary.mean.into()),
        ]);
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};
    use proptest::prelude::*;

    /// Field-by-field bitwise comparison of two metric sets.
    fn assert_metrics_bit_identical(a: &SimulatedMetrics, b: &SimulatedMetrics, label: &str) {
        assert_eq!(a.replications, b.replications, "{label}: replications");
        assert_eq!(
            a.system_p95.to_bits(),
            b.system_p95.to_bits(),
            "{label}: p95"
        );
        assert_eq!(
            a.fairness.to_bits(),
            b.fairness.to_bits(),
            "{label}: fairness"
        );
        assert_eq!(
            a.worst_relative_error.to_bits(),
            b.worst_relative_error.to_bits(),
            "{label}: worst_relative_error"
        );
        assert_eq!(a.precise, b.precise, "{label}: precise");
        let pairs = a
            .user_summaries
            .iter()
            .zip(&b.user_summaries)
            .chain(std::iter::once((&a.system_summary, &b.system_summary)));
        for (sa, sb) in pairs {
            assert_eq!(sa.mean.to_bits(), sb.mean.to_bits(), "{label}: mean");
            assert_eq!(
                sa.half_width.to_bits(),
                sb.half_width.to_bits(),
                "{label}: half_width"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn parallel_and_sequential_runners_are_bit_identical(
            base_seed in 0u64..u64::MAX,
            replications in 2u32..6,
        ) {
            let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
            let profile = ProportionalScheme.compute(&model).unwrap();
            let plan = ReplicationPlan {
                replications,
                base_seed,
                ..ReplicationPlan::paper()
            };
            let config = SimulationConfig {
                target_jobs: 2_000,
                ..SimulationConfig::quick()
            };
            let reference = simulate_profile_with(
                &ParallelRunner::sequential(), &model, &profile, &plan, config,
            ).unwrap();
            for threads in [2usize, 8] {
                let par = simulate_profile_with(
                    &ParallelRunner::new(threads), &model, &profile, &plan, config,
                ).unwrap();
                assert_metrics_bit_identical(&par, &reference, &format!("{threads} threads"));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn metrics_are_bit_identical_with_collection_enabled(
            base_seed in 0u64..u64::MAX,
            threads in 1usize..5,
        ) {
            use lb_telemetry::{parse_log, JsonlCollector};

            /// Shared in-memory sink so the test can read the log back.
            #[derive(Clone, Default)]
            struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
            impl std::io::Write for SharedBuf {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }

            let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
            let profile = ProportionalScheme.compute(&model).unwrap();
            let plan = ReplicationPlan {
                replications: 3,
                base_seed,
                ..ReplicationPlan::paper()
            };
            let config = SimulationConfig {
                target_jobs: 1_000,
                ..SimulationConfig::quick()
            };
            let runner = ParallelRunner::new(threads);
            let plain =
                simulate_profile_traced(&runner, &model, &profile, &plan, config, None).unwrap();

            let buf = SharedBuf::default();
            let collector: Arc<dyn Collector> =
                Arc::new(JsonlCollector::new(Box::new(buf.clone())));
            let traced = simulate_profile_traced(
                &runner, &model, &profile, &plan, config, Some(&collector),
            )
            .unwrap();
            collector.flush();

            assert_metrics_bit_identical(&traced, &plain, "collector on vs off");

            // The emitted log is schema-valid and covers the whole fold.
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            let log = parse_log(&text).unwrap();
            prop_assert_eq!(log.count("sim.replication"), 3);
            prop_assert_eq!(log.count("sim.summary"), 1);
            prop_assert!(log.count("runner.worker") >= 1);
            // The span tree is present and balanced: parse_log already
            // validated causality (unique ids, parents opened first);
            // every opened span also closed, and each layer shows up.
            prop_assert!(log.count("span_open") > 0);
            prop_assert_eq!(log.count("span_open"), log.count("span_close"));
            let span_names: Vec<String> = log
                .events
                .iter()
                .filter(|e| e.name == "span_open")
                .filter_map(|e| e.field("name").and_then(|v| v.as_str().map(String::from)))
                .collect();
            for expected in ["sim.run", "runner.pool", "runner.worker", "sim.replication"] {
                prop_assert!(
                    span_names.iter().any(|n| n == expected),
                    "missing span {}", expected
                );
            }
        }
    }

    #[test]
    fn replications_aggregate_and_gate_precision() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let plan = ReplicationPlan {
            replications: 3,
            ..ReplicationPlan::paper()
        };
        let metrics = simulate_profile(&model, &profile, &plan, SimulationConfig::quick()).unwrap();
        assert_eq!(metrics.replications, 3);
        assert_eq!(metrics.user_summaries.len(), 2);
        // PS is perfectly fair analytically; empirically close to 1.
        assert!(metrics.fairness > 0.99, "fairness {}", metrics.fairness);
        // 60k jobs x 3 replications is plenty for 5% precision here.
        assert!(
            metrics.precise,
            "worst rel err {}",
            metrics.worst_relative_error
        );
        // The p95 tail sits well above the mean (exponential-ish sojourns
        // put p95 near 3x the mean for a single M/M/1).
        assert!(
            metrics.system_p95 > 1.5 * metrics.system_summary.mean,
            "p95 {} vs mean {}",
            metrics.system_p95,
            metrics.system_summary.mean
        );
        // CI covers the analytic value.
        let analytic = lb_game::metrics::evaluate_profile(&model, &profile).unwrap();
        for (s, t) in metrics.user_summaries.iter().zip(&analytic.user_times) {
            let widened = 3.0 * s.half_width.max(0.02 * t);
            assert!(
                (s.mean - t).abs() <= widened,
                "user mean {} vs theory {t}",
                s.mean
            );
        }
    }
}
