//! The analytic fast path: closed-form stationary sampling of M/M/1
//! sojourns instead of event-by-event simulation.
//!
//! Under the paper's model, once the flow split is fixed each station `i`
//! is an M/M/1 queue with arrival rate `λ_i = Σ_j s_ji φ_j` and service
//! rate `μ_i`, and its stationary sojourn time is exponential with rate
//! `μ_i − λ_i`. A replication's measurements are then fully determined by
//! sufficient statistics we can draw directly:
//!
//! * the number of measured jobs user `j` completes at station `i` over a
//!   window of length `W` is Poisson with mean `s_ji φ_j W` (Poisson
//!   splitting);
//! * the *sum* of `N` i.i.d. `Exp(μ_i − λ_i)` sojourns is
//!   `Gamma(N, μ_i − λ_i)`, one draw instead of `N`.
//!
//! So instead of ~`Φ·horizon` calendar events, a replication costs
//! `O(m·n)` random draws — the same per-user means, counts and
//! utilizations in microseconds, with genuine replication-to-replication
//! sampling noise. Two idealizations to be aware of: the station starts
//! in steady state (no warmup transient — the warmup window is simply
//! excluded from the count means), and consecutive sojourns are sampled
//! independently, whereas a real M/M/1 sojourn sequence is positively
//! autocorrelated — cross-replication variance is therefore slightly
//! optimistic. Point estimates are unaffected, which is what the
//! Table-1/figure pipelines consume.

use crate::scenario::{SimulationConfig, SimulationResult};
use lb_des::rng::RngStream;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;

/// Runs one replication analytically (no event calendar at all).
///
/// Stream layout: station `i` draws its per-user counts and sojourn sums
/// from stream `i`; the total generated-jobs count draws from stream `n`.
/// Deterministic per `(seed)`, independent of thread count by
/// construction (there is nothing to parallelize).
///
/// Only valid for the exponential arrival/service model —
/// [`crate::scenario::run_replication_spanned`] checks
/// [`SimulationConfig::is_analytic`] before routing here.
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`].
pub fn run_replication_analytic(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    profile.check_stability(model)?;
    let m = model.num_users();
    let n = model.num_computers();
    let horizon_secs = config.target_jobs as f64 / model.total_arrival_rate();
    let window = horizon_secs * (1.0 - config.warmup_fraction);

    let mut user_sums = vec![0.0f64; m];
    let mut user_counts = vec![0u64; m];
    let mut system_sum = 0.0f64;
    let mut system_count = 0u64;
    let mut utilizations = Vec::with_capacity(n);

    for i in 0..n {
        let mut rng = RngStream::new(seed, i as u64);
        let mu = model.computer_rate(i);
        let lambda: f64 = (0..m)
            .map(|j| profile.strategy(j).fractions()[i] * model.user_rate(j))
            .sum();
        // Stationary mean busy fraction (the empirical value in the full
        // engine fluctuates around this).
        utilizations.push(lambda / mu);
        if lambda <= 0.0 {
            continue;
        }
        let sojourn_rate = mu - lambda;
        for (j, (sum, count)) in user_sums.iter_mut().zip(&mut user_counts).enumerate() {
            let flow = profile.strategy(j).fractions()[i] * model.user_rate(j);
            if flow <= 0.0 {
                continue;
            }
            let jobs = rng.poisson(flow * window);
            if jobs == 0 {
                continue;
            }
            let total = rng.gamma(jobs as f64, sojourn_rate);
            *sum += total;
            *count += jobs;
            system_sum += total;
            system_count += jobs;
        }
    }

    let jobs_generated =
        RngStream::new(seed, n as u64).poisson(model.total_arrival_rate() * horizon_secs);

    Ok(SimulationResult {
        user_means: user_sums
            .iter()
            .zip(&user_counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect(),
        system_mean: if system_count > 0 {
            system_sum / system_count as f64
        } else {
            0.0
        },
        user_counts,
        jobs_generated,
        utilizations,
        horizon: horizon_secs,
    })
}

/// The stationary 95th percentile of the system (job-averaged) response
/// time under `profile`: the sojourn of a random job is the mixture
/// `Σ_i (λ_i/Λ)·Exp(μ_i − λ_i)`, whose tail is solved by bisection. Used
/// by the harness in place of the per-job P² estimate when the analytic
/// path runs (there are no per-job responses to stream).
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`] (stability/shape checks).
pub fn analytic_system_p95(
    model: &SystemModel,
    profile: &StrategyProfile,
) -> Result<f64, GameError> {
    profile.check_stability(model)?;
    let m = model.num_users();
    let n = model.num_computers();
    let total = model.total_arrival_rate();

    // (mixture weight, sojourn rate) per station carrying flow.
    let components: Vec<(f64, f64)> = (0..n)
        .filter_map(|i| {
            let lambda: f64 = (0..m)
                .map(|j| profile.strategy(j).fractions()[i] * model.user_rate(j))
                .sum();
            (lambda > 0.0).then(|| (lambda / total, model.computer_rate(i) - lambda))
        })
        .collect();
    let tail = |t: f64| -> f64 {
        components
            .iter()
            .map(|&(w, rate)| w * (-rate * t).exp())
            .sum()
    };

    let mut lo = 0.0f64;
    // The slowest component bounds the tail: expand until P(T > hi) < 5%.
    let mut hi = 1.0;
    while tail(hi) > 0.05 {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if tail(mid) > 0.05 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_replication, SimFidelity};
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};

    fn table1_like() -> (SystemModel, StrategyProfile) {
        let model = SystemModel::new(vec![10.0, 20.0, 30.0], vec![12.0, 12.0, 12.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        (model, profile)
    }

    #[test]
    fn analytic_replication_is_deterministic_per_seed() {
        let (model, profile) = table1_like();
        let config = SimulationConfig::quick().with_fidelity(SimFidelity::Analytic);
        let a = run_replication(&model, &profile, config, 42).unwrap();
        let b = run_replication(&model, &profile, config, 42).unwrap();
        assert_eq!(a.jobs_generated, b.jobs_generated);
        assert_eq!(a.user_counts, b.user_counts);
        assert_eq!(a.system_mean.to_bits(), b.system_mean.to_bits());
        let c = run_replication(&model, &profile, config, 43).unwrap();
        assert_ne!(
            a.system_mean.to_bits(),
            c.system_mean.to_bits(),
            "different seeds must resample"
        );
    }

    #[test]
    fn analytic_matches_theory_and_full_engine() {
        let (model, profile) = table1_like();
        let full_cfg = SimulationConfig {
            target_jobs: 400_000,
            ..SimulationConfig::quick()
        };
        let analytic_cfg = full_cfg.with_fidelity(SimFidelity::Analytic);
        let analytic = run_replication(&model, &profile, analytic_cfg, 7).unwrap();
        let full = run_replication(&model, &profile, full_cfg, 7).unwrap();
        let theory = lb_game::metrics::evaluate_profile(&model, &profile).unwrap();

        assert!(
            (analytic.system_mean - theory.overall_time).abs() < 0.03 * theory.overall_time,
            "analytic {} vs theory {}",
            analytic.system_mean,
            theory.overall_time
        );
        assert!(
            (analytic.system_mean - full.system_mean).abs() < 0.05 * full.system_mean,
            "analytic {} vs full {}",
            analytic.system_mean,
            full.system_mean
        );
        for ((a, f), t) in analytic
            .user_means
            .iter()
            .zip(&full.user_means)
            .zip(&theory.user_times)
        {
            assert!((a - t).abs() < 0.05 * t, "user mean {a} vs theory {t}");
            assert!((a - f).abs() < 0.08 * f, "user mean {a} vs full {f}");
        }
        for ((a, f), i) in analytic
            .utilizations
            .iter()
            .zip(&full.utilizations)
            .zip(0..)
        {
            assert!((a - f).abs() < 0.02, "util[{i}] analytic {a} vs full {f}");
        }
        // Counts and jobs track the full engine within sampling noise.
        let total_a: u64 = analytic.user_counts.iter().sum();
        let total_f: u64 = full.user_counts.iter().sum();
        assert!(
            (total_a as f64 - total_f as f64).abs() < 0.02 * total_f as f64,
            "measured jobs {total_a} vs {total_f}"
        );
        assert!(
            (analytic.jobs_generated as f64 - full.jobs_generated as f64).abs()
                < 0.02 * full.jobs_generated as f64
        );
    }

    #[test]
    fn analytic_reproduces_table1_means_within_tolerance() {
        // The paper's Table-1 system at medium load: the analytic fast
        // path must land on the same per-user means the full engine
        // measures, within cross-engine statistical tolerance.
        use crate::harness::simulate_profile_with;
        use crate::parallel::ParallelRunner;
        use lb_stats::ReplicationPlan;

        let model = SystemModel::table1_system(0.6).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let plan = ReplicationPlan {
            replications: 3,
            ..ReplicationPlan::paper()
        };
        let full_cfg = SimulationConfig {
            target_jobs: 200_000,
            ..SimulationConfig::quick()
        };
        let runner = ParallelRunner::sequential();
        let full = simulate_profile_with(&runner, &model, &profile, &plan, full_cfg).unwrap();
        let analytic = simulate_profile_with(
            &runner,
            &model,
            &profile,
            &plan,
            full_cfg.with_fidelity(SimFidelity::Analytic),
        )
        .unwrap();

        let fm = full.system_summary.mean;
        let am = analytic.system_summary.mean;
        assert!(
            (am - fm).abs() < 0.05 * fm,
            "analytic system mean {am} vs full {fm}"
        );
        for (a, f) in analytic.user_summaries.iter().zip(&full.user_summaries) {
            assert!(
                (a.mean - f.mean).abs() < 0.10 * f.mean.max(1e-9),
                "user mean {} vs {}",
                a.mean,
                f.mean
            );
        }
        // The analytic p95 substitutes the mixture tail for the per-job
        // estimate; the two must agree to the P² estimator's resolution.
        assert!(
            (analytic.system_p95 - full.system_p95).abs() < 0.15 * full.system_p95,
            "analytic p95 {} vs full {}",
            analytic.system_p95,
            full.system_p95
        );
    }

    #[test]
    fn analytic_fidelity_falls_back_to_full_for_other_families() {
        use crate::scenario::DistributionFamily;
        let (model, profile) = table1_like();
        let config = SimulationConfig {
            target_jobs: 5_000,
            ..SimulationConfig::quick()
        }
        .with_service(DistributionFamily::Deterministic)
        .with_fidelity(SimFidelity::Analytic);
        assert!(!config.is_analytic());
        // The router must land on a real engine: per-job sink fires.
        let mut jobs = 0u64;
        crate::scenario::run_replication_with_sink(&model, &profile, config, 3, |_, _| jobs += 1)
            .unwrap();
        assert!(jobs > 0, "fallback engine must simulate per-job events");
    }

    #[test]
    fn p95_bisection_matches_single_station_closed_form() {
        // One station: T ~ Exp(μ−λ), p95 = ln(20)/(μ−λ).
        let model = SystemModel::new(vec![10.0], vec![6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let p95 = analytic_system_p95(&model, &profile).unwrap();
        let expected = (20.0f64).ln() / 4.0;
        assert!((p95 - expected).abs() < 1e-9, "{p95} vs {expected}");

        // Mixture case: between the fastest and slowest components.
        let (model3, profile3) = {
            let model = SystemModel::new(vec![10.0, 20.0, 30.0], vec![12.0, 12.0, 12.0]).unwrap();
            let profile = ProportionalScheme.compute(&model).unwrap();
            (model, profile)
        };
        let p95_mix = analytic_system_p95(&model3, &profile3).unwrap();
        assert!(p95_mix > 0.0 && p95_mix.is_finite());
    }
}
