//! Deterministic parallel fan-out for independent replications.
//!
//! Every replication in this workspace draws from its own seeded RNG
//! streams ([`lb_stats::ReplicationPlan::seed_for`]), so replications are
//! pure functions of their index. [`ParallelRunner`] exploits that: it
//! fans tasks out over a scoped worker pool (crossbeam scoped threads, no
//! `'static` bounds) and hands results back **in task-index order**, so
//! any fold over them is byte-identical to the sequential loop no matter
//! the thread count or completion order.
//!
//! The pool defaults to [`std::thread::available_parallelism`] and can be
//! overridden (or opted out of) with the `LB_SIM_THREADS` environment
//! variable: unset, `0`, or `auto` use all cores; `1` forces the
//! sequential path; any other `N` uses `N` workers.

use lb_telemetry::{Collector, FieldValue, Span, SpanHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "LB_SIM_THREADS";

/// A fixed-size worker pool that runs independent, index-addressed tasks
/// and merges their results deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelRunner {
    threads: usize,
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ParallelRunner {
    /// A runner with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The sequential runner (one worker, no threads spawned).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Sizes the pool from `LB_SIM_THREADS`, falling back to
    /// [`std::thread::available_parallelism`] when unset, `0`, `auto`,
    /// or unparseable.
    pub fn from_env() -> Self {
        let configured = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| match v.trim() {
                "" | "auto" => None,
                other => other.parse::<usize>().ok(),
            })
            .filter(|&n| n > 0);
        match configured {
            Some(n) => Self::new(n),
            None => Self::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(0..count)` across the pool and returns the results in
    /// index order. Tasks are claimed from a shared counter (work
    /// stealing), so uneven task costs do not idle workers; because each
    /// result lands in its own slot, the output is byte-identical to the
    /// sequential `map` for any thread count.
    ///
    /// # Panics
    ///
    /// A panic inside `task` is resumed on the calling thread.
    pub fn run<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || count <= 1 {
            return (0..count).map(task).collect();
        }
        let workers = self.threads.min(count);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|_| {
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= count {
                                break;
                            }
                            local.push((idx, task(idx)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                let local = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                for (idx, value) in local {
                    slots[idx] = Some(value);
                }
            }
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index is claimed exactly once"))
            .collect()
    }

    /// [`ParallelRunner::run`] with per-worker telemetry: after the pool
    /// joins, one `runner.worker {worker, tasks, busy_us, idle_us}` event
    /// is emitted per worker **in worker-index order** (so the event
    /// stream is as deterministic as the results; only the timing field
    /// values vary run to run), and the run is wrapped in a causal span
    /// tree (see [`ParallelRunner::run_spanned`]). Falls back to the
    /// plain path — no timing probes at all — when the collector is
    /// absent or disabled, so results are byte-identical either way.
    ///
    /// # Panics
    ///
    /// A panic inside `task` is resumed on the calling thread.
    pub fn run_traced<T, F>(
        &self,
        count: usize,
        task: F,
        collector: Option<&Arc<dyn Collector>>,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_spanned(count, |i, _| task(i), collector, None)
    }

    /// The fully-instrumented fan-out: like [`ParallelRunner::run_traced`]
    /// but additionally opens a `runner.pool` span (a child of `parent`
    /// when given, a root span otherwise) for the whole run and one live
    /// `runner.worker` span per worker, **from the worker's own thread**,
    /// so span timestamps bracket the actual concurrent execution. Each
    /// task receives a handle to its worker's span and may parent its own
    /// spans under it (e.g. one `sim.replication` span per task). Worker
    /// spans close with `{tasks, busy_us, idle_us}`; the flat
    /// `runner.worker` events of `run_traced` are still emitted after the
    /// join, in worker-index order.
    ///
    /// When the collector is absent or disabled the task is invoked with
    /// `None` and the untimed [`ParallelRunner::run`] path is used, so
    /// results are byte-identical with collection on or off.
    ///
    /// # Panics
    ///
    /// A panic inside `task` is resumed on the calling thread.
    pub fn run_spanned<T, F>(
        &self,
        count: usize,
        task: F,
        collector: Option<&Arc<dyn Collector>>,
        parent: Option<&SpanHandle>,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Option<&SpanHandle>) -> T + Sync,
    {
        let Some(c) = lb_telemetry::enabled(collector) else {
            return self.run(count, |i| task(i, None));
        };
        let workers = if self.threads <= 1 || count <= 1 {
            1
        } else {
            self.threads.min(count)
        };
        let pool_fields = [
            ("tasks", FieldValue::U64(count as u64)),
            ("workers", FieldValue::U64(workers as u64)),
        ];
        let pool = match parent {
            Some(p) => p.child("runner.pool", &pool_fields),
            None => Span::root(collector, "runner.pool", &pool_fields)
                .expect("collector enablement was checked above"),
        };
        if workers == 1 {
            let start = Instant::now();
            let mut busy = std::time::Duration::ZERO;
            let wspan = pool.child("runner.worker", &[("worker", 0u64.into())]);
            let whandle = wspan.handle();
            let out = (0..count)
                .map(|i| {
                    let t0 = Instant::now();
                    let v = task(i, Some(&whandle));
                    busy += t0.elapsed();
                    v
                })
                .collect();
            let idle = start.elapsed().saturating_sub(busy);
            let busy_us = busy.as_micros() as u64;
            let idle_us = idle.as_micros() as u64;
            wspan.close_with(&[
                ("tasks", (count as u64).into()),
                ("busy_us", busy_us.into()),
                ("idle_us", idle_us.into()),
            ]);
            c.emit(
                "runner.worker",
                &[
                    ("worker", 0u64.into()),
                    ("tasks", (count as u64).into()),
                    ("busy_us", busy_us.into()),
                    ("idle_us", idle_us.into()),
                ],
            );
            pool.close();
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut stats: Vec<(u64, u64, u64)> = Vec::with_capacity(workers);
        let pool_handle = pool.handle();
        let task = &task;
        let next_ref = &next;
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let handle = pool_handle.clone();
                    s.spawn(move |_| {
                        let start = Instant::now();
                        let mut busy = std::time::Duration::ZERO;
                        let wspan = handle.child("runner.worker", &[("worker", (w as u64).into())]);
                        let whandle = wspan.handle();
                        let mut local = Vec::new();
                        loop {
                            let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                            if idx >= count {
                                break;
                            }
                            let t0 = Instant::now();
                            let value = task(idx, Some(&whandle));
                            busy += t0.elapsed();
                            local.push((idx, value));
                        }
                        let idle = start.elapsed().saturating_sub(busy);
                        let busy_us = busy.as_micros() as u64;
                        let idle_us = idle.as_micros() as u64;
                        wspan.close_with(&[
                            ("tasks", (local.len() as u64).into()),
                            ("busy_us", busy_us.into()),
                            ("idle_us", idle_us.into()),
                        ]);
                        (local, busy_us, idle_us)
                    })
                })
                .collect();
            for h in handles {
                let (local, busy_us, idle_us) =
                    h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                stats.push((local.len() as u64, busy_us, idle_us));
                for (idx, value) in local {
                    slots[idx] = Some(value);
                }
            }
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        for (worker, (tasks, busy_us, idle_us)) in stats.into_iter().enumerate() {
            c.emit(
                "runner.worker",
                &[
                    ("worker", (worker as u64).into()),
                    ("tasks", tasks.into()),
                    ("busy_us", busy_us.into()),
                    ("idle_us", idle_us.into()),
                ],
            );
        }
        pool.close();
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index is claimed exactly once"))
            .collect()
    }

    /// Fallible variant of [`ParallelRunner::run_traced`], with
    /// [`ParallelRunner::try_run`]'s error semantics (lowest-indexed
    /// failure wins). Note the traced path runs every task even after a
    /// failure — tasks are expected to be effect-free.
    ///
    /// # Errors
    ///
    /// The lowest-indexed task error.
    pub fn try_run_traced<T, E, F>(
        &self,
        count: usize,
        task: F,
        collector: Option<&Arc<dyn Collector>>,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.try_run_spanned(count, |i, _| task(i), collector, None)
    }

    /// Fallible variant of [`ParallelRunner::run_spanned`], with
    /// [`ParallelRunner::try_run`]'s error semantics (lowest-indexed
    /// failure wins). The spanned path runs every task even after a
    /// failure — tasks are expected to be effect-free.
    ///
    /// # Errors
    ///
    /// The lowest-indexed task error.
    pub fn try_run_spanned<T, E, F>(
        &self,
        count: usize,
        task: F,
        collector: Option<&Arc<dyn Collector>>,
        parent: Option<&SpanHandle>,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize, Option<&SpanHandle>) -> Result<T, E> + Sync,
    {
        if lb_telemetry::enabled(collector).is_none() {
            return self.try_run(count, |i| task(i, None));
        }
        self.run_spanned(count, &task, collector, parent)
            .into_iter()
            .collect()
    }

    /// Fallible variant of [`ParallelRunner::run`]: collects `Ok` values
    /// in index order, or returns the error of the **lowest-indexed**
    /// failing task — the same error the sequential loop would surface.
    /// (The parallel path may still execute tasks after a failing index;
    /// tasks are expected to be effect-free.)
    ///
    /// # Errors
    ///
    /// The lowest-indexed task error.
    pub fn try_run<T, E, F>(&self, count: usize, task: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        if self.threads <= 1 || count <= 1 {
            return (0..count).map(task).collect();
        }
        self.run(count, &task).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let runner = ParallelRunner::new(8);
        // Make early tasks the slowest so completion order differs from
        // index order.
        let out = runner.run(32, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        let task = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let reference = ParallelRunner::sequential().run(100, task);
        for threads in [2, 3, 8] {
            assert_eq!(ParallelRunner::new(threads).run(100, task), reference);
        }
    }

    #[test]
    fn try_run_reports_the_lowest_failing_index() {
        let runner = ParallelRunner::new(4);
        let result: Result<Vec<usize>, usize> =
            runner.try_run(64, |i| if i % 10 == 7 { Err(i) } else { Ok(i) });
        assert_eq!(result, Err(7));
        let ok: Result<Vec<usize>, usize> = runner.try_run(16, Ok);
        assert_eq!(ok.unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_single_task_counts_work() {
        let runner = ParallelRunner::new(4);
        assert_eq!(runner.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(runner.run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(ParallelRunner::new(0).threads(), 1);
        assert!(ParallelRunner::from_env().threads() >= 1);
    }

    #[test]
    fn traced_run_matches_plain_and_accounts_every_task() {
        use lb_telemetry::{MemoryCollector, SPAN_CLOSE, SPAN_OPEN};
        let task = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let reference = ParallelRunner::sequential().run(64, task);
        for threads in [1usize, 4] {
            let runner = ParallelRunner::new(threads);
            let mem = Arc::new(MemoryCollector::default());
            let collector: Arc<dyn Collector> = mem.clone();
            let out = runner.run_traced(64, task, Some(&collector));
            assert_eq!(out, reference, "{threads} threads");
            // One pool span plus one worker span per worker wrap the run.
            assert_eq!(mem.count(SPAN_OPEN), 1 + threads, "pool + worker spans");
            assert_eq!(mem.count(SPAN_CLOSE), 1 + threads, "all spans closed");
            let flat: Vec<_> = mem
                .events()
                .into_iter()
                .filter(|(name, _)| *name == "runner.worker")
                .collect();
            assert_eq!(flat.len(), threads, "one flat event per worker");
            let mut total = 0u64;
            for (worker, (_, fields)) in flat.iter().enumerate() {
                assert_eq!(fields[0], ("worker", FieldValue::U64(worker as u64)));
                let ("tasks", FieldValue::U64(tasks)) = &fields[1] else {
                    panic!("missing tasks field: {fields:?}");
                };
                total += *tasks;
            }
            assert_eq!(total, 64, "every task accounted to a worker");
        }
    }

    #[test]
    fn spanned_run_hands_tasks_a_worker_span_and_stays_bit_identical() {
        use lb_telemetry::MemoryCollector;
        let task = |i: usize, worker: Option<&SpanHandle>| {
            // A per-task child span parented under the worker's span.
            let _child = worker.map(|w| w.child("test.task", &[("i", (i as u64).into())]));
            (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let reference = ParallelRunner::sequential().run_spanned(32, task, None, None);
        for threads in [1usize, 4] {
            let runner = ParallelRunner::new(threads);
            let mem = Arc::new(MemoryCollector::default());
            let collector: Arc<dyn Collector> = mem.clone();
            let out = runner.run_spanned(32, task, Some(&collector), None);
            assert_eq!(out, reference, "{threads} threads");
            // pool + workers + one span per task, all closed.
            assert_eq!(mem.count("span_open"), 1 + threads + 32);
            assert_eq!(mem.count("span_close"), 1 + threads + 32);
        }
    }

    #[test]
    fn traced_run_without_collector_is_the_plain_path() {
        let runner = ParallelRunner::new(3);
        let out = runner.run_traced(10, |i| i * 2, None);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let ok: Result<Vec<usize>, usize> = runner.try_run_traced(10, Ok, None);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn task_panics_propagate() {
        let runner = ParallelRunner::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner.run(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(caught.is_err());
    }
}
