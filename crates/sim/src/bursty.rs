//! Correlated (MMPP) arrivals — the strongest departure from the paper's
//! Poisson assumption.
//!
//! [`run_replication_mmpp`] re-runs the standard scenario with each
//! user's job stream replaced by a two-state Markov-modulated Poisson
//! process of the same long-run rate. Renewal interarrivals (covered by
//! [`crate::scenario`]) change the marginal distribution only; MMPP adds
//! *temporal correlation* — sustained bursts — which queueing folklore
//! says hurts far more. The tests confirm it.

use lb_des::engine::Engine;
use lb_des::monitor::ResponseTimeMonitor;
use lb_des::rng::RngStream;
use lb_des::source::MmppSource;
use lb_des::station::{Arrival, FcfsStation, Job};
use lb_des::time::SimTime;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;

use crate::scenario::{SimulationConfig, SimulationResult};

/// Burst parameters for every user's MMPP stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Burst-state rate as a multiple of the user's mean rate
    /// (`1 <= burst_factor < 2`; 1 degenerates to Poisson-like).
    pub burst_factor: f64,
    /// Mean sojourn in each modulating state, in units of the user's mean
    /// interarrival time (larger = longer, more damaging bursts).
    pub relative_sojourn: f64,
}

/// Runs one replication with MMPP arrivals (same service model and
/// measurement pipeline as [`crate::scenario::run_replication`]).
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`].
pub fn run_replication_mmpp(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    burst: BurstModel,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    profile.check_stability(model)?;
    let m = model.num_users();
    let n = model.num_computers();

    let horizon_secs = config.target_jobs as f64 / model.total_arrival_rate();
    let warmup = SimTime::new(horizon_secs * config.warmup_fraction);

    let mut sources: Vec<MmppSource> = (0..m)
        .map(|j| {
            let phi = model.user_rate(j);
            MmppSource::balanced(
                phi,
                burst.burst_factor,
                burst.relative_sojourn / phi,
                RngStream::new(seed, j as u64),
            )
        })
        .collect();
    let mut dispatch_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (m + j) as u64))
        .collect();
    let mut service_streams: Vec<RngStream> = (0..n)
        .map(|i| RngStream::new(seed, (2 * m + i) as u64))
        .collect();
    let service_dists: Vec<_> = (0..n)
        .map(|i| config.service.distribution(model.computer_rate(i)))
        .collect();

    #[derive(Debug, Clone, Copy)]
    enum Event {
        Arrival { user: usize },
        Completion { computer: usize },
    }

    let mut stations: Vec<FcfsStation> = (0..n).map(|_| FcfsStation::new()).collect();
    let mut monitor = ResponseTimeMonitor::new(m, warmup);
    let mut engine: Engine<Event> = Engine::new();
    engine.set_horizon(SimTime::new(horizon_secs));

    for (j, src) in sources.iter_mut().enumerate() {
        let dt = src.next_interarrival();
        engine.schedule_in(dt, Event::Arrival { user: j });
    }

    let mut jobs_generated = 0_u64;
    while let Some(ev) = engine.next_event() {
        match ev {
            Event::Arrival { user } => {
                let dt = sources[user].next_interarrival();
                engine.schedule_in(dt, Event::Arrival { user });

                let fractions = profile.strategy(user).fractions();
                let computer = dispatch_streams[user].categorical(fractions);
                let service = service_streams[computer].sample(&service_dists[computer]);
                jobs_generated += 1;
                let job = Job {
                    id: jobs_generated,
                    user,
                    arrival: engine.now(),
                    service_time: service,
                };
                if let Arrival::StartService(done_at) = stations[computer].arrive(job, engine.now())
                {
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
            Event::Completion { computer } => {
                let (finished, next) = stations[computer].complete(engine.now());
                monitor.record(finished.user, finished.arrival, engine.now());
                if let Some((_, done_at)) = next {
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
        }
    }

    let now = SimTime::new(horizon_secs);
    Ok(SimulationResult {
        user_means: monitor.user_means(),
        system_mean: monitor.system_mean(),
        user_counts: (0..m).map(|j| monitor.count(j)).collect(),
        jobs_generated,
        utilizations: stations.iter().map(|s| s.utilization(now)).collect(),
        horizon: horizon_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::nash::nash_equilibrium;
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};

    #[test]
    fn correlated_bursts_inflate_response_times() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let cfg = SimulationConfig::quick();
        let poisson = crate::scenario::run_replication(&model, &profile, cfg, 41).unwrap();
        let mild = run_replication_mmpp(
            &model,
            &profile,
            cfg,
            BurstModel {
                burst_factor: 1.5,
                relative_sojourn: 20.0,
            },
            41,
        )
        .unwrap();
        let heavy = run_replication_mmpp(
            &model,
            &profile,
            cfg,
            BurstModel {
                burst_factor: 1.9,
                relative_sojourn: 200.0,
            },
            41,
        )
        .unwrap();
        assert!(
            poisson.system_mean < heavy.system_mean,
            "poisson {} vs heavy bursts {}",
            poisson.system_mean,
            heavy.system_mean
        );
        assert!(
            mild.system_mean < heavy.system_mean,
            "mild {} vs heavy {}",
            mild.system_mean,
            heavy.system_mean
        );
    }

    #[test]
    fn long_run_rate_is_preserved() {
        let model = SystemModel::new(vec![30.0], vec![4.0, 8.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let r = run_replication_mmpp(
            &model,
            &profile,
            SimulationConfig::quick(),
            BurstModel {
                burst_factor: 1.8,
                relative_sojourn: 50.0,
            },
            13,
        )
        .unwrap();
        let ratio = r.user_counts[1] as f64 / r.user_counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "rate ratio {ratio}");
        let target = 60_000.0;
        assert!(
            (r.jobs_generated as f64 - target).abs() < 0.1 * target,
            "generated {}",
            r.jobs_generated
        );
    }

    #[test]
    fn burst_crossover_between_nash_and_ps() {
        // A real finding (EXPERIMENTS.md Ext. 7): under *mild* correlated
        // bursts NASH keeps its advantage over PS, but under heavy,
        // sustained bursts the ordering REVERSES — the equilibrium loads
        // the fast machines close to their limits while PS's uniform
        // slack absorbs bursts. The paper's scheme is optimal for the
        // traffic model it assumes, not unconditionally.
        let model = SystemModel::table1_system(0.6).unwrap();
        let nash = nash_equilibrium(&model).unwrap();
        let ps = ProportionalScheme.compute(&model).unwrap();
        let cfg = SimulationConfig::quick();
        let run = |profile: &lb_game::strategy::StrategyProfile, b: BurstModel| {
            run_replication_mmpp(&model, profile, cfg, b, 3)
                .unwrap()
                .system_mean
        };
        let mild = BurstModel {
            burst_factor: 1.3,
            relative_sojourn: 20.0,
        };
        let heavy = BurstModel {
            burst_factor: 1.9,
            relative_sojourn: 200.0,
        };
        let (nash_mild, ps_mild) = (run(nash.profile(), mild), run(&ps, mild));
        assert!(
            nash_mild < ps_mild,
            "mild bursts: NASH {nash_mild} should still beat PS {ps_mild}"
        );
        let (nash_heavy, ps_heavy) = (run(nash.profile(), heavy), run(&ps, heavy));
        assert!(
            ps_heavy < nash_heavy,
            "heavy bursts: PS {ps_heavy} should overtake NASH {nash_heavy}"
        );
    }
}
