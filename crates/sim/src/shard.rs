//! Sharded replication: one independent event stream per station.
//!
//! When users emit Poisson streams, probabilistic dispatch splits and
//! re-superposes them: station `i` receives an independent Poisson stream
//! of rate `λ_i = Σ_j s_ji φ_j`, with each arrival belonging to user `j`
//! with probability `s_ji φ_j / λ_i` independently of everything else.
//! The whole replication therefore factors into `n` non-interacting
//! per-station simulations ([`lb_des::run_station_shard`]) whose
//! measurements merge deterministically in station-index order —
//! embarrassingly parallel, and bit-identical at any thread count because
//! each shard is a pure function of its own `(seed, station)` streams.
//!
//! The factorization is exact only for exponential interarrival times;
//! [`crate::scenario::run_replication_spanned`] routes any other arrival
//! family to the classic single-calendar engine.
//!
//! Stream layout (per replication seed): station `i` draws arrivals from
//! stream `i`, service demands from stream `n + i`, and user attribution
//! from stream `2n + i`. This differs from the single-calendar layout, so
//! the two engines agree statistically (and in distribution), not
//! bitwise; the thread-count invariance the CSV acceptance tests rely on
//! holds *within* each engine.

use crate::parallel::ParallelRunner;
use crate::scenario::{SimulationConfig, SimulationResult};
use lb_des::monitor::ResponseTimeMonitor;
use lb_des::rng::{AliasTable, RngStream};
use lb_des::shard::{run_station_shard, ShardOutcome, ShardSpec, DEFAULT_SHARD_BATCH};
use lb_des::time::SimTime;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;
use lb_telemetry::{Collector, SpanHandle};
use std::sync::Arc;

/// Everything needed to run station `i`'s shard, precomputed once per
/// replication so the sequential and parallel drivers share one source
/// of truth.
struct StationPlan {
    /// `None` when no flow reaches the station (it idles for the whole
    /// horizon and contributes empty statistics).
    spec: Option<ShardSpec>,
    attribution: AliasTable,
}

/// Builds the per-station shard plans for one replication.
///
/// Returns an error when the profile saturates a computer (mirrors the
/// single-calendar engine's stability check).
fn station_plans(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
) -> Result<(Vec<StationPlan>, f64), GameError> {
    profile.check_stability(model)?;
    let m = model.num_users();
    let n = model.num_computers();
    let horizon_secs = config.target_jobs as f64 / model.total_arrival_rate();
    let warmup = SimTime::new(horizon_secs * config.warmup_fraction);

    let plans = (0..n)
        .map(|i| {
            // Poisson splitting: user j contributes rate s_ji φ_j here.
            let weights: Vec<f64> = (0..m)
                .map(|j| profile.strategy(j).fractions()[i] * model.user_rate(j))
                .collect();
            let rate: f64 = weights.iter().sum();
            if rate <= 0.0 {
                return StationPlan {
                    spec: None,
                    attribution: AliasTable::new(&[1.0]),
                };
            }
            StationPlan {
                spec: Some(ShardSpec {
                    arrival_rate: rate,
                    service: config.service.distribution(model.computer_rate(i)),
                    horizon: SimTime::new(horizon_secs),
                    warmup,
                    users: m,
                    batch: DEFAULT_SHARD_BATCH,
                }),
                attribution: AliasTable::new(&weights),
            }
        })
        .collect();
    Ok((plans, horizon_secs))
}

/// Runs station `i`'s shard with its `(seed, station)`-keyed streams.
/// Idle stations (no flow) return an empty outcome without touching any
/// stream, so adding a station never perturbs the others.
#[allow(clippy::too_many_arguments)]
fn run_plan<F: FnMut(usize, f64)>(
    plan: &StationPlan,
    station: usize,
    stations: usize,
    users: usize,
    seed: u64,
    collector: Option<&Arc<dyn Collector>>,
    span_parent: Option<&SpanHandle>,
    sink: F,
) -> ShardOutcome {
    let Some(spec) = &plan.spec else {
        return ShardOutcome {
            monitor: ResponseTimeMonitor::new(users, SimTime::ZERO),
            jobs_generated: 0,
            utilization: 0.0,
        };
    };
    let mut arrival = RngStream::new(seed, station as u64);
    let mut service = RngStream::new(seed, (stations + station) as u64);
    let mut attribution = RngStream::new(seed, (2 * stations + station) as u64);
    run_station_shard(
        spec,
        &plan.attribution,
        &mut arrival,
        &mut service,
        &mut attribution,
        collector,
        span_parent,
        sink,
    )
}

/// Folds per-station outcomes (in station-index order) into one
/// [`SimulationResult`].
fn merge_outcomes(outcomes: &[ShardOutcome], users: usize, horizon_secs: f64) -> SimulationResult {
    let mut monitor = ResponseTimeMonitor::new(users, SimTime::ZERO);
    let mut jobs_generated = 0u64;
    let mut utilizations = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        monitor.merge(&outcome.monitor);
        jobs_generated += outcome.jobs_generated;
        utilizations.push(outcome.utilization);
    }
    SimulationResult {
        user_means: monitor.user_means(),
        system_mean: monitor.system_mean(),
        user_counts: (0..users).map(|j| monitor.count(j)).collect(),
        jobs_generated,
        utilizations,
        horizon: horizon_secs,
    }
}

/// Runs one replication as `n` sequential station shards, streaming every
/// measured `(user, response)` to `sink` grouped by station (station 0's
/// completions first, then station 1's, …; within a station, completion
/// order). This is the default engine behind
/// [`crate::scenario::run_replication`] for Poisson arrivals.
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`].
pub fn run_replication_sharded_spanned<F: FnMut(usize, f64)>(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
    collector: Option<&Arc<dyn Collector>>,
    span_parent: Option<&SpanHandle>,
    mut sink: F,
) -> Result<SimulationResult, GameError> {
    let (plans, horizon_secs) = station_plans(model, profile, config)?;
    let m = model.num_users();
    let n = plans.len();
    let outcomes: Vec<ShardOutcome> = plans
        .iter()
        .enumerate()
        .map(|(i, plan)| run_plan(plan, i, n, m, seed, collector, span_parent, &mut sink))
        .collect();
    Ok(merge_outcomes(&outcomes, m, horizon_secs))
}

/// [`run_replication_sharded_spanned`] without telemetry or a sink.
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`].
pub fn run_replication_sharded(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    run_replication_sharded_spanned(model, profile, config, seed, None, None, |_, _| {})
}

/// Runs one replication with the station shards fanned out across
/// `runner`'s worker pool — the intra-replication parallelism used by
/// `bench --sim` and any caller with one huge replication rather than
/// many small ones. Outcomes merge in station-index order, so the result
/// is byte-identical to [`run_replication_sharded`] at any thread count.
///
/// # Errors
///
/// As for [`crate::scenario::run_replication`].
pub fn run_replication_sharded_with(
    runner: &ParallelRunner,
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    let (plans, horizon_secs) = station_plans(model, profile, config)?;
    let m = model.num_users();
    let n = plans.len();
    let outcomes = runner.run(n, |i| {
        run_plan(&plans[i], i, n, m, seed, None, None, |_, _| {})
    });
    Ok(merge_outcomes(&outcomes, m, horizon_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_replication;
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};

    fn table1_like() -> (SystemModel, StrategyProfile) {
        let model = SystemModel::new(vec![10.0, 20.0, 30.0], vec![12.0, 12.0, 12.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        (model, profile)
    }

    /// Bitwise comparison of two replication results.
    fn assert_results_bit_identical(a: &SimulationResult, b: &SimulationResult, label: &str) {
        assert_eq!(a.jobs_generated, b.jobs_generated, "{label}: jobs");
        assert_eq!(a.user_counts, b.user_counts, "{label}: counts");
        assert_eq!(
            a.system_mean.to_bits(),
            b.system_mean.to_bits(),
            "{label}: system mean"
        );
        for (x, y) in a.user_means.iter().zip(&b.user_means) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: user mean");
        }
        for (x, y) in a.utilizations.iter().zip(&b.utilizations) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: utilization");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn parallel_shards_are_bit_identical_to_sequential(seed in 0u64..u64::MAX) {
            let (model, profile) = table1_like();
            let config = SimulationConfig {
                target_jobs: 10_000,
                ..SimulationConfig::quick()
            };
            let reference = run_replication_sharded(&model, &profile, config, seed).unwrap();
            for threads in [1usize, 2, 8] {
                let par = run_replication_sharded_with(
                    &ParallelRunner::new(threads),
                    &model,
                    &profile,
                    config,
                    seed,
                )
                .unwrap();
                assert_results_bit_identical(&par, &reference, &format!("{threads} threads"));
            }
        }
    }

    #[test]
    fn sharded_is_the_default_engine_for_poisson_arrivals() {
        let (model, profile) = table1_like();
        let config = SimulationConfig {
            target_jobs: 20_000,
            ..SimulationConfig::quick()
        };
        let routed = run_replication(&model, &profile, config, 5).unwrap();
        let direct = run_replication_sharded(&model, &profile, config, 5).unwrap();
        assert_results_bit_identical(&routed, &direct, "router vs direct");
    }

    #[test]
    fn sharded_matches_single_calendar_statistically() {
        // Same model, same flows — the two engines consume different
        // stream layouts, so they agree in distribution, not bitwise.
        let (model, profile) = table1_like();
        let config = SimulationConfig {
            target_jobs: 400_000,
            ..SimulationConfig::quick()
        };
        let sharded = run_replication_sharded(&model, &profile, config, 11).unwrap();
        let legacy =
            crate::scenario::run_replication_single_calendar(&model, &profile, config, 11).unwrap();
        assert!(
            (sharded.system_mean - legacy.system_mean).abs() < 0.05 * legacy.system_mean,
            "sharded {} vs single-calendar {}",
            sharded.system_mean,
            legacy.system_mean
        );
        for (a, b) in sharded.utilizations.iter().zip(&legacy.utilizations) {
            assert!((a - b).abs() < 0.02, "util {a} vs {b}");
        }
        let total_sharded: u64 = sharded.user_counts.iter().sum();
        let total_legacy: u64 = legacy.user_counts.iter().sum();
        assert!(
            (total_sharded as f64 - total_legacy as f64).abs() < 0.02 * total_legacy as f64,
            "measured jobs {total_sharded} vs {total_legacy}"
        );
    }

    #[test]
    fn idle_stations_contribute_nothing_and_break_nothing() {
        // Route all flow to computer 0; computer 1 must idle.
        let model = SystemModel::new(vec![30.0, 20.0], vec![6.0]).unwrap();
        let profile = StrategyProfile::new(vec![
            lb_game::strategy::Strategy::new(vec![1.0, 0.0]).unwrap()
        ])
        .unwrap();
        let result =
            run_replication_sharded(&model, &profile, SimulationConfig::quick(), 3).unwrap();
        assert_eq!(result.utilizations[1], 0.0);
        assert!(result.utilizations[0] > 0.1);
        assert!(result.jobs_generated > 0);
    }

    #[test]
    fn sink_sees_exactly_the_measured_jobs() {
        let (model, profile) = table1_like();
        let config = SimulationConfig {
            target_jobs: 10_000,
            ..SimulationConfig::quick()
        };
        let mut seen = 0u64;
        let result = run_replication_sharded_spanned(
            &model,
            &profile,
            config,
            17,
            None,
            None,
            |user, resp| {
                assert!(user < 3);
                assert!(resp >= 0.0);
                seen += 1;
            },
        )
        .unwrap();
        let measured: u64 = result.user_counts.iter().sum();
        assert_eq!(seen, measured);
    }
}
