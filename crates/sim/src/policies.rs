//! Dynamic (state-aware) dispatch policies — the paper's "dynamic load
//! balancing" future work, made concrete.
//!
//! The paper's schemes are *static*: each job is routed by fixed
//! probabilities, blind to the current queues. A dynamic dispatcher
//! inspects the run queues at each arrival (the same observable the
//! paper's users estimate) and routes jobs online:
//!
//! * [`DispatchPolicy::Static`] — the paper's model (any strategy
//!   profile, e.g. the Nash equilibrium).
//! * [`DispatchPolicy::WeightedRoundRobin`] — deterministic proportional
//!   interleaving (static information, but no sampling variance).
//! * [`DispatchPolicy::JoinShortestQueue`] — route to the shortest run
//!   queue. Textbook-optimal for *homogeneous* servers; on heterogeneous
//!   ones it famously misroutes to slow machines (the tests show it).
//! * [`DispatchPolicy::PowerOfD`] — sample `d` random computers, pick
//!   the best by expected delay (the "power of two choices").
//! * [`DispatchPolicy::ShortestExpectedDelay`] — route to
//!   `argmin (n_i + 1)/μ_i`, the heterogeneity-correct greedy rule.
//!
//! The `ext-policies` experiment quantifies how much the online
//! information is worth relative to the static Nash equilibrium.

use crate::scenario::{SimulationConfig, SimulationResult};
use lb_des::engine::Engine;
use lb_des::monitor::ResponseTimeMonitor;
use lb_des::rng::RngStream;
use lb_des::station::{Arrival, FcfsStation, Job};
use lb_des::time::SimTime;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;

/// A job-dispatch rule, applied at every arrival.
#[derive(Debug, Clone)]
pub enum DispatchPolicy {
    /// Probabilistic routing by a fixed strategy profile (the paper).
    Static(StrategyProfile),
    /// Deterministic proportional interleaving of the profile's
    /// *aggregate* fractions (smallest-deficit-first).
    WeightedRoundRobin(StrategyProfile),
    /// Route to the computer with the fewest jobs present (ties broken
    /// by processing rate, fastest first).
    JoinShortestQueue,
    /// Sample `d >= 1` computers with probability proportional to their
    /// processing rates, route to the one with the smallest expected
    /// delay `(n_i + 1)/μ_i`. (Rate-proportional sampling is the
    /// heterogeneity-safe variant: uniform sampling routes almost all
    /// traffic to the numerous slow machines and diverges.)
    PowerOfD(usize),
    /// Route to `argmin (n_i + 1)/μ_i` over all computers.
    ShortestExpectedDelay,
}

impl DispatchPolicy {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::Static(_) => "STATIC",
            DispatchPolicy::WeightedRoundRobin(_) => "WRR",
            DispatchPolicy::JoinShortestQueue => "JSQ",
            DispatchPolicy::PowerOfD(_) => "POW-D",
            DispatchPolicy::ShortestExpectedDelay => "SED",
        }
    }
}

/// Internal dispatcher state.
enum DispatcherState {
    Static,
    Wrr {
        /// Accumulated deficit per computer (aggregate fractions).
        credit: Vec<f64>,
        weights: Vec<f64>,
    },
    Stateless,
}

/// Runs one replication under a dynamic dispatch policy.
///
/// # Errors
///
/// * [`GameError::DimensionMismatch`] when a profile's shape disagrees
///   with the model.
/// * [`GameError::InfeasibleStrategy`] when a static profile saturates a
///   computer.
/// * [`GameError::InvalidRate`] for `PowerOfD(0)`.
pub fn run_policy_replication(
    model: &SystemModel,
    policy: &DispatchPolicy,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    let m = model.num_users();
    let n = model.num_computers();

    // Validate policy-specific inputs.
    let mut state = match policy {
        DispatchPolicy::Static(profile) => {
            profile.check_stability(model)?;
            DispatcherState::Static
        }
        DispatchPolicy::WeightedRoundRobin(profile) => {
            profile.check_stability(model)?;
            let flows = profile.computer_flows(model)?;
            let phi = model.total_arrival_rate();
            DispatcherState::Wrr {
                credit: vec![0.0; n],
                weights: flows.iter().map(|f| f / phi).collect(),
            }
        }
        DispatchPolicy::PowerOfD(d) => {
            if *d == 0 {
                return Err(GameError::InvalidRate {
                    name: "d",
                    value: 0.0,
                });
            }
            DispatcherState::Stateless
        }
        _ => DispatcherState::Stateless,
    };

    let horizon_secs = config.target_jobs as f64 / model.total_arrival_rate();
    let warmup = SimTime::new(horizon_secs * config.warmup_fraction);

    let mut arrival_streams: Vec<RngStream> =
        (0..m).map(|j| RngStream::new(seed, j as u64)).collect();
    let mut dispatch_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (m + j) as u64))
        .collect();
    let mut service_streams: Vec<RngStream> = (0..n)
        .map(|i| RngStream::new(seed, (2 * m + i) as u64))
        .collect();
    let service_dists: Vec<_> = (0..n)
        .map(|i| config.service.distribution(model.computer_rate(i)))
        .collect();
    let arrival_dists: Vec<_> = (0..m)
        .map(|j| config.arrivals.distribution(model.user_rate(j)))
        .collect();

    #[derive(Debug, Clone, Copy)]
    enum Event {
        Arrival { user: usize },
        Completion { computer: usize },
    }

    let mut stations: Vec<FcfsStation> = (0..n).map(|_| FcfsStation::new()).collect();
    let mut monitor = ResponseTimeMonitor::new(m, warmup);
    let mut engine: Engine<Event> = Engine::new();
    engine.set_horizon(SimTime::new(horizon_secs));

    for j in 0..m {
        let dt = arrival_streams[j].sample(&arrival_dists[j]);
        engine.schedule_in(dt, Event::Arrival { user: j });
    }

    let mu = model.computer_rates();
    let mut jobs_generated = 0_u64;
    while let Some(ev) = engine.next_event() {
        match ev {
            Event::Arrival { user } => {
                let dt = arrival_streams[user].sample(&arrival_dists[user]);
                engine.schedule_in(dt, Event::Arrival { user });

                let computer = match (policy, &mut state) {
                    (DispatchPolicy::Static(profile), _) => {
                        dispatch_streams[user].categorical(profile.strategy(user).fractions())
                    }
                    (
                        DispatchPolicy::WeightedRoundRobin(_),
                        DispatcherState::Wrr { credit, weights },
                    ) => {
                        // Accumulate credit, send to the largest.
                        for (c, w) in credit.iter_mut().zip(weights.iter()) {
                            *c += w;
                        }
                        let best = argmax(credit);
                        credit[best] -= 1.0;
                        best
                    }
                    (DispatchPolicy::JoinShortestQueue, _) => {
                        // Fewest jobs present; ties to the fastest machine.
                        (0..n)
                            .min_by(|&a, &b| {
                                stations[a]
                                    .run_queue_length()
                                    .cmp(&stations[b].run_queue_length())
                                    .then(mu[b].partial_cmp(&mu[a]).expect("finite rates"))
                            })
                            .expect("non-empty system")
                    }
                    (DispatchPolicy::PowerOfD(d), _) => {
                        let d = (*d).min(n);
                        let mut best = None;
                        for _ in 0..d {
                            let i = dispatch_streams[user].categorical(mu);
                            let delay = (stations[i].run_queue_length() as f64 + 1.0) / mu[i];
                            best = match best {
                                None => Some((i, delay)),
                                Some((_, bd)) if delay < bd => Some((i, delay)),
                                keep => keep,
                            };
                        }
                        best.expect("d >= 1").0
                    }
                    (DispatchPolicy::ShortestExpectedDelay, _) => (0..n)
                        .min_by(|&a, &b| {
                            let da = (stations[a].run_queue_length() as f64 + 1.0) / mu[a];
                            let db = (stations[b].run_queue_length() as f64 + 1.0) / mu[b];
                            da.partial_cmp(&db).expect("finite delays")
                        })
                        .expect("non-empty system"),
                    _ => unreachable!("state matches policy"),
                };

                let service = service_streams[computer].sample(&service_dists[computer]);
                jobs_generated += 1;
                let job = Job {
                    id: jobs_generated,
                    user,
                    arrival: engine.now(),
                    service_time: service,
                };
                if let Arrival::StartService(done_at) = stations[computer].arrive(job, engine.now())
                {
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
            Event::Completion { computer } => {
                let (finished, next) = stations[computer].complete(engine.now());
                monitor.record(finished.user, finished.arrival, engine.now());
                if let Some((_, done_at)) = next {
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
        }
    }

    let now = SimTime::new(horizon_secs);
    Ok(SimulationResult {
        user_means: monitor.user_means(),
        system_mean: monitor.system_mean(),
        user_counts: (0..m).map(|j| monitor.count(j)).collect(),
        jobs_generated,
        utilizations: stations.iter().map(|s| s.utilization(now)).collect(),
        horizon: horizon_secs,
    })
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::nash::nash_equilibrium;
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};

    fn mean(model: &SystemModel, policy: &DispatchPolicy) -> f64 {
        run_policy_replication(model, policy, SimulationConfig::quick(), 23)
            .unwrap()
            .system_mean
    }

    #[test]
    fn static_policy_matches_the_plain_scenario() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let via_policy = run_policy_replication(
            &model,
            &DispatchPolicy::Static(profile.clone()),
            SimulationConfig::quick(),
            5,
        )
        .unwrap();
        let direct = crate::scenario::run_replication_single_calendar(
            &model,
            &profile,
            SimulationConfig::quick(),
            5,
        )
        .unwrap();
        // Identical streams and identical dispatch logic: identical runs.
        assert_eq!(via_policy.user_means, direct.user_means);
        assert_eq!(via_policy.jobs_generated, direct.jobs_generated);
    }

    #[test]
    fn sed_beats_the_static_nash_equilibrium() {
        // Online queue information dominates any static rule.
        let model = SystemModel::table1_system(0.6).unwrap();
        let nash = nash_equilibrium(&model).unwrap();
        let d_static = mean(&model, &DispatchPolicy::Static(nash.profile().clone()));
        let d_sed = mean(&model, &DispatchPolicy::ShortestExpectedDelay);
        assert!(
            d_sed < d_static,
            "SED {d_sed} should beat static NASH {d_static}"
        );
    }

    #[test]
    fn naive_jsq_suffers_under_high_heterogeneity() {
        // Raw queue-length JSQ ignores speed: at skewness 20 it routes
        // heavily to the fourteen slow machines and loses even to the
        // *static* Nash profile, while speed-aware SED dominates both.
        let model = SystemModel::skewed_system(20.0, 0.6).unwrap();
        let nash = nash_equilibrium(&model).unwrap();
        let d_static = mean(&model, &DispatchPolicy::Static(nash.profile().clone()));
        let d_jsq = mean(&model, &DispatchPolicy::JoinShortestQueue);
        let d_sed = mean(&model, &DispatchPolicy::ShortestExpectedDelay);
        assert!(
            d_jsq > d_static,
            "JSQ {d_jsq} should lose to static NASH {d_static} at skew 20"
        );
        assert!(d_sed < d_static, "SED {d_sed} vs static {d_static}");
    }

    #[test]
    fn power_of_two_sits_between_one_choice_and_sed() {
        let model = SystemModel::table1_system(0.6).unwrap();
        // d = 1 is rate-proportional random routing (PS-like).
        let d_pow1 = mean(&model, &DispatchPolicy::PowerOfD(1));
        let d_pow2 = mean(&model, &DispatchPolicy::PowerOfD(2));
        let d_sed = mean(&model, &DispatchPolicy::ShortestExpectedDelay);
        assert!(d_pow2 < d_pow1, "two choices {d_pow2} vs one {d_pow1}");
        assert!(d_sed <= d_pow2 * 1.05, "SED {d_sed} vs pow2 {d_pow2}");
        // And the single sample behaves like the PS utilization pattern.
        let ps = ProportionalScheme.compute(&model).unwrap();
        let d_ps = mean(&model, &DispatchPolicy::Static(ps));
        assert!(
            (d_pow1 - d_ps).abs() < 0.15 * d_ps,
            "pow1 {d_pow1} vs PS {d_ps}"
        );
    }

    #[test]
    fn wrr_tracks_its_profile_flows() {
        let model = SystemModel::table1_system(0.5).unwrap();
        let nash = nash_equilibrium(&model).unwrap();
        let r = run_policy_replication(
            &model,
            &DispatchPolicy::WeightedRoundRobin(nash.profile().clone()),
            SimulationConfig::quick(),
            9,
        )
        .unwrap();
        // Empirical computer utilizations track the profile's flows.
        let flows = nash.profile().computer_flows(&model).unwrap();
        for ((u, &f), &mu) in r
            .utilizations
            .iter()
            .zip(&flows)
            .zip(model.computer_rates())
        {
            assert!(
                (u - f / mu).abs() < 0.06,
                "utilization {u} vs expected {}",
                f / mu
            );
        }
        // Deterministic interleaving removes sampling variance: WRR is at
        // least as good as the probabilistic static dispatch.
        let d_static = mean(&model, &DispatchPolicy::Static(nash.profile().clone()));
        assert!(r.system_mean <= d_static * 1.02);
    }

    #[test]
    fn invalid_power_of_d_is_rejected() {
        let model = SystemModel::new(vec![10.0], vec![5.0]).unwrap();
        assert!(matches!(
            run_policy_replication(
                &model,
                &DispatchPolicy::PowerOfD(0),
                SimulationConfig::quick(),
                0
            ),
            Err(GameError::InvalidRate { .. })
        ));
    }

    #[test]
    fn policy_names_are_stable() {
        let model = SystemModel::new(vec![10.0], vec![5.0]).unwrap();
        let p = ProportionalScheme.compute(&model).unwrap();
        assert_eq!(DispatchPolicy::Static(p.clone()).name(), "STATIC");
        assert_eq!(DispatchPolicy::WeightedRoundRobin(p).name(), "WRR");
        assert_eq!(DispatchPolicy::JoinShortestQueue.name(), "JSQ");
        assert_eq!(DispatchPolicy::PowerOfD(2).name(), "POW-D");
        assert_eq!(DispatchPolicy::ShortestExpectedDelay.name(), "SED");
    }
}
