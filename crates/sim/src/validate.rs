//! Analytic-vs-empirical validation.
//!
//! The analytic layer (`lb-game::metrics`) predicts per-user expected
//! response times from M/M/1 formulas; the simulation measures them from
//! sample paths. [`compare`] quantifies the discrepancy, certifying both
//! the formulas and the simulator against each other — this is the
//! backbone of the workspace's end-to-end tests and of the
//! `simulation_validation` example.

use crate::harness::SimulatedMetrics;
use lb_game::error::GameError;
use lb_game::metrics::{evaluate_profile, ProfileMetrics};
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;

/// Per-user and system-level relative discrepancies between the analytic
/// predictions and the simulated estimates.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Analytic predictions.
    pub analytic: ProfileMetrics,
    /// Relative error of each user's simulated mean vs its prediction.
    pub user_relative_errors: Vec<f64>,
    /// Relative error of the simulated system mean.
    pub system_relative_error: f64,
    /// Largest per-user relative error.
    pub max_user_relative_error: f64,
}

impl ValidationReport {
    /// Whether every discrepancy is within `tol` (e.g. `0.05` for the
    /// paper's 5% precision).
    pub fn within(&self, tol: f64) -> bool {
        self.max_user_relative_error <= tol && self.system_relative_error <= tol
    }
}

/// Compares simulated metrics with analytic predictions for the same
/// model and profile.
///
/// # Errors
///
/// Propagates analytic-evaluation failures (shape mismatches).
pub fn compare(
    model: &SystemModel,
    profile: &StrategyProfile,
    simulated: &SimulatedMetrics,
) -> Result<ValidationReport, GameError> {
    let analytic = evaluate_profile(model, profile)?;
    let user_relative_errors: Vec<f64> = simulated
        .user_summaries
        .iter()
        .zip(&analytic.user_times)
        .map(|(s, &t)| if t > 0.0 { (s.mean - t).abs() / t } else { 0.0 })
        .collect();
    let max_user_relative_error = user_relative_errors.iter().cloned().fold(0.0, f64::max);
    // Analytic system mean weights users by rate (job-average), matching
    // the simulator's job-averaged system mean.
    let system_relative_error = if analytic.overall_time > 0.0 {
        (simulated.system_summary.mean - analytic.overall_time).abs() / analytic.overall_time
    } else {
        0.0
    };
    Ok(ValidationReport {
        analytic,
        user_relative_errors,
        system_relative_error,
        max_user_relative_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::simulate_profile;
    use crate::scenario::SimulationConfig;
    use lb_game::schemes::{IndividualOptimalScheme, LoadBalancingScheme};
    use lb_stats::ReplicationPlan;

    #[test]
    fn response_time_variance_matches_the_mixture_formula() {
        // The analytic claim: a user's sojourn time is a mixture of
        // exponentials, with closed-form variance. Validate empirically.
        use lb_game::nash::nash_equilibrium;
        use lb_game::response::user_response_variance;
        use lb_stats::Welford;
        let model = SystemModel::new(vec![10.0, 40.0], vec![12.0, 13.0]).unwrap();
        let nash = nash_equilibrium(&model).unwrap();
        let mut acc = [Welford::new(), Welford::new()];
        crate::scenario::run_replication_with_sink(
            &model,
            nash.profile(),
            SimulationConfig {
                target_jobs: 150_000,
                ..SimulationConfig::quick()
            },
            8,
            |user, resp| acc[user].push(resp),
        )
        .unwrap();
        for (j, welford) in acc.iter().enumerate() {
            let predicted = user_response_variance(&model, nash.profile(), j).unwrap();
            let measured = welford.sample_variance();
            let rel = (measured - predicted).abs() / predicted;
            assert!(
                rel < 0.15,
                "user {j}: measured var {measured} vs predicted {predicted} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn simulation_validates_analytic_model_for_ios() {
        let model = SystemModel::new(vec![10.0, 20.0, 40.0], vec![10.0, 25.0]).unwrap();
        let profile = IndividualOptimalScheme.compute(&model).unwrap();
        let plan = ReplicationPlan {
            replications: 3,
            ..ReplicationPlan::paper()
        };
        let sim = simulate_profile(&model, &profile, &plan, SimulationConfig::quick()).unwrap();
        let report = compare(&model, &profile, &sim).unwrap();
        assert!(
            report.within(0.08),
            "max user err {}, system err {}",
            report.max_user_relative_error,
            report.system_relative_error
        );
    }
}
