//! # lb-sim — simulating the load-balanced distributed system
//!
//! Binds the game model (`lb-game`) to the discrete-event engine
//! (`lb-des`) exactly as the paper's §4.1 describes: "jobs arriving at the
//! system are distributed to the computers according to the specified load
//! balancing scheme; jobs which have been dispatched to a particular
//! computer are run-to-completion in FCFS order; each computer is modeled
//! as an M/M/1 queueing system".
//!
//! * [`scenario`] — one replication: Poisson job sources per user, a
//!   probabilistic dispatcher implementing the strategy profile, FCFS
//!   stations per computer, warmup-aware response-time monitors.
//! * [`harness`] — the replication driver (the paper's five runs with
//!   different random streams), producing per-user means with confidence
//!   intervals and the empirical fairness index.
//! * [`validate`] — compares empirical means against the analytic M/M/1
//!   predictions of `lb-game::metrics` (used by tests to certify the
//!   whole stack end to end).
//! * [`pools`] — the multicore variant: M/M/c pools simulated with
//!   multi-server stations, validating the numeric pool-game equilibria.
//! * [`bursty`] — correlated (MMPP) arrivals, the strongest departure
//!   from the paper's Poisson assumption.
//! * [`policies`] — dynamic (state-aware) dispatch: JSQ, power-of-d,
//!   shortest-expected-delay vs the paper's static profiles.
//! * [`churn`] — capacity churn: servers crash/degrade/recover on a
//!   phase schedule (or a sampled breakdown process), the dispatcher
//!   re-equilibrates and sheds load per an overload policy, and the
//!   measured response times are validated against the quasi-static
//!   analytic mixture.
//! * [`parallel`] — the deterministic fan-out pool: replications are pure
//!   functions of their seeded index, so they spread across threads and
//!   merge back in index order, byte-identical to the sequential loop.
//! * [`shard`] — the sharded engine: Poisson splitting factors a
//!   replication into independent per-station event streams that run in
//!   parallel and merge in station-index order, bit-identical at any
//!   thread count.
//! * [`analytic`] — the closed-form fast path: stationary M/M/1 sojourn
//!   sampling (Poisson counts, Gamma sums) replacing the event loop when
//!   [`scenario::SimFidelity::Analytic`] is requested.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analytic;
pub mod bursty;
pub mod churn;
pub mod harness;
pub mod parallel;
pub mod policies;
pub mod pools;
pub mod scenario;
pub mod shard;
pub mod validate;

pub use analytic::{analytic_system_p95, run_replication_analytic};
pub use churn::{
    breakdown_schedule, run_churn_replication, run_churn_replication_traced, ChurnPhase,
    ChurnResult,
};
pub use harness::{
    simulate_profile, simulate_profile_traced, simulate_profile_with, SimulatedMetrics,
};
pub use parallel::ParallelRunner;
pub use scenario::{DistributionFamily, SimFidelity, SimulationConfig, SimulationResult};
pub use shard::{
    run_replication_sharded, run_replication_sharded_spanned, run_replication_sharded_with,
};
