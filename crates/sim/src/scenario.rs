//! One simulation replication of the load-balanced system.
//!
//! Wiring (paper Figure 1): user `j` emits a Poisson stream of rate `φ_j`;
//! each job is dispatched to computer `i` with probability `s_ji`
//! (independent splitting of a Poisson process yields Poisson arrivals of
//! rate `s_ji φ_j` at each computer — the M/M/1 model's assumption); the
//! job's service demand is drawn exponential with the computer's rate
//! `μ_i`; stations serve FCFS, run-to-completion.

use lb_des::engine::Engine;
use lb_des::monitor::ResponseTimeMonitor;
use lb_des::rng::{Distribution, RngStream};
use lb_des::station::{Arrival, FcfsStation, Job};
use lb_des::time::SimTime;
use lb_game::error::GameError;
use lb_game::model::SystemModel;
use lb_game::strategy::StrategyProfile;
use lb_telemetry::{Collector, SpanHandle};
use std::sync::Arc;

/// Service-time distribution family, parameterized so computer `i` keeps
/// its mean service time `1/μ_i` while the *shape* (variability) changes.
///
/// The paper assumes [`DistributionFamily::Exponential`] (M/M/1). The other
/// families drive the robustness extension: does the Nash profile,
/// computed under M/M/1 assumptions, still perform when service times are
/// more regular (Erlang, deterministic) or burstier (hyperexponential)?
/// The matching theory is `lb_queueing::mg1` (Pollaczek–Khinchine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistributionFamily {
    /// Exponential service — the paper's model (SCV 1).
    Exponential,
    /// Erlang-k service (SCV `1/k`, more regular than exponential).
    Erlang {
        /// Number of phases (k >= 1).
        k: u32,
    },
    /// Two-phase balanced-means hyperexponential with the given squared
    /// coefficient of variation (must be > 1; burstier than exponential).
    HyperExponential {
        /// Target squared coefficient of variation.
        scv: f64,
    },
    /// Constant service times (SCV 0; M/D/1).
    Deterministic,
}

impl DistributionFamily {
    /// The sampling distribution for a computer of processing rate `mu`
    /// (mean service time `1/mu` in every family).
    ///
    /// # Panics
    ///
    /// Panics for `Erlang { k: 0 }` or a hyperexponential `scv <= 1`
    /// (configuration errors).
    pub fn distribution(&self, mu: f64) -> Distribution {
        match *self {
            DistributionFamily::Exponential => Distribution::Exponential { rate: mu },
            DistributionFamily::Erlang { k } => {
                assert!(k >= 1, "Erlang needs k >= 1");
                Distribution::Erlang {
                    k,
                    rate: f64::from(k) * mu,
                }
            }
            DistributionFamily::HyperExponential { scv } => {
                assert!(scv > 1.0, "hyperexponential needs scv > 1, got {scv}");
                // Balanced-means two-moment fit.
                let d = ((scv - 1.0) / (scv + 1.0)).sqrt();
                let p = 0.5 * (1.0 + d);
                Distribution::HyperExponential {
                    p,
                    rate_a: 2.0 * p * mu,
                    rate_b: 2.0 * (1.0 - p) * mu,
                }
            }
            DistributionFamily::Deterministic => Distribution::Deterministic { value: 1.0 / mu },
        }
    }

    /// Squared coefficient of variation of the family.
    pub fn scv(&self) -> f64 {
        match *self {
            DistributionFamily::Exponential => 1.0,
            DistributionFamily::Erlang { k } => 1.0 / f64::from(k.max(1)),
            DistributionFamily::HyperExponential { scv } => scv,
            DistributionFamily::Deterministic => 0.0,
        }
    }
}

/// How much per-job detail a replication simulates.
///
/// [`SimFidelity::Full`] runs every job through a discrete-event engine.
/// [`SimFidelity::Analytic`] swaps the run-to-completion M/M/1 stations
/// for closed-form stationary sojourn sampling (see [`crate::analytic`])
/// — orders of magnitude faster when per-job detail isn't needed, and
/// only available for the paper's exponential arrival/service model; any
/// other family silently falls back to the full engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimFidelity {
    /// Full discrete-event simulation of every job.
    #[default]
    Full,
    /// Closed-form stationary sampling of M/M/1 sojourn statistics.
    Analytic,
}

/// Length/precision parameters of one replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Target number of generated jobs (sets the horizon as
    /// `jobs / Φ` seconds).
    pub target_jobs: u64,
    /// Fraction of the horizon discarded as warmup.
    pub warmup_fraction: f64,
    /// Service-time family (the paper uses exponential).
    pub service: DistributionFamily,
    /// Interarrival-time family per user, as a renewal process (the
    /// paper uses exponential, i.e. Poisson arrivals).
    pub arrivals: DistributionFamily,
    /// Per-job detail level (full DES vs analytic fast path).
    pub fidelity: SimFidelity,
}

impl SimulationConfig {
    /// The paper's scale: "several thousands of seconds, sufficient to
    /// generate 1 to 2 millions jobs typically".
    pub fn paper() -> Self {
        Self {
            target_jobs: 1_000_000,
            warmup_fraction: 0.1,
            service: DistributionFamily::Exponential,
            arrivals: DistributionFamily::Exponential,
            fidelity: SimFidelity::Full,
        }
    }

    /// A fast configuration for unit/integration tests.
    pub fn quick() -> Self {
        Self {
            target_jobs: 60_000,
            warmup_fraction: 0.1,
            service: DistributionFamily::Exponential,
            arrivals: DistributionFamily::Exponential,
            fidelity: SimFidelity::Full,
        }
    }

    /// Same config with a different service-time family.
    pub fn with_service(mut self, service: DistributionFamily) -> Self {
        self.service = service;
        self
    }

    /// Same config with a different interarrival-time family.
    pub fn with_arrivals(mut self, arrivals: DistributionFamily) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Same config with a different fidelity.
    pub fn with_fidelity(mut self, fidelity: SimFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Whether this configuration takes the analytic fast path: fidelity
    /// [`SimFidelity::Analytic`] *and* the exponential arrival/service
    /// model the closed forms require. Any other family combination
    /// falls back to the full engine even when `Analytic` was requested.
    pub fn is_analytic(&self) -> bool {
        self.fidelity == SimFidelity::Analytic
            && self.arrivals == DistributionFamily::Exponential
            && self.service == DistributionFamily::Exponential
    }
}

/// Measurements from one replication.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Mean response time of each user's measured jobs.
    pub user_means: Vec<f64>,
    /// Job-averaged system response time.
    pub system_mean: f64,
    /// Measured (post-warmup) jobs per user.
    pub user_counts: Vec<u64>,
    /// Total jobs generated (including warmup).
    pub jobs_generated: u64,
    /// Empirical busy fraction of each computer.
    pub utilizations: Vec<f64>,
    /// Simulated horizon, in seconds.
    pub horizon: f64,
}

/// Events of the load-balancing simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// User `user` generates a job now.
    Arrival { user: usize },
    /// The job in service at `computer` finishes now.
    Completion { computer: usize },
}

/// Runs one replication of `profile` on `model` with the given seed.
///
/// # Errors
///
/// [`GameError::DimensionMismatch`] on shape mismatch;
/// [`GameError::InfeasibleStrategy`] if the profile saturates a computer
/// (the simulation would never reach steady state).
pub fn run_replication(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    run_replication_with_sink(model, profile, config, seed, |_, _| {})
}

/// Like [`run_replication`], additionally streaming every *measured*
/// (post-warmup) job's `(user, response_time)` to `sink` — the hook for
/// custom estimators (histograms, percentile trackers).
///
/// Ordering caveat: on the sharded engine (the default for Poisson
/// arrivals) the stream is grouped by station, not globally
/// time-ordered. Order-insensitive estimators are unaffected;
/// order-sensitive ones (e.g. batch means over the global completion
/// sequence) should run on
/// [`run_replication_single_calendar_spanned`] instead.
///
/// # Errors
///
/// As for [`run_replication`].
pub fn run_replication_with_sink<F: FnMut(usize, f64)>(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
    sink: F,
) -> Result<SimulationResult, GameError> {
    run_replication_spanned(model, profile, config, seed, None, None, sink)
}

/// Like [`run_replication_with_sink`], additionally wiring the engine
/// into the telemetry pipeline: the collector receives the engine's
/// `des.compact` events, and — when `span_parent` is given — `des.shard`
/// / `sim.batch` / `des.batch` spans partition the event machinery under
/// that parent (typically the caller's `sim.replication` span). Purely
/// observational; results are bit-identical with or without either hook.
///
/// This is the routing point for the simulation fast paths:
///
/// * [`SimFidelity::Analytic`] on the exponential model → closed-form
///   stationary sampling ([`crate::analytic`]); the per-job `sink` never
///   fires (there are no per-job events to observe).
/// * [`SimFidelity::Full`] with Poisson (exponential) arrivals → the
///   sharded per-station engine ([`crate::shard`]), which exploits
///   Poisson splitting to run one small calendar per station.
/// * Non-Poisson arrivals → the classic single-calendar engine
///   ([`run_replication_single_calendar_spanned`]), the only one whose
///   renewal arrival streams couple stations through dispatch order.
///
/// # Errors
///
/// As for [`run_replication`].
pub fn run_replication_spanned<F: FnMut(usize, f64)>(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
    collector: Option<&Arc<dyn Collector>>,
    span_parent: Option<&SpanHandle>,
    sink: F,
) -> Result<SimulationResult, GameError> {
    if config.is_analytic() {
        return crate::analytic::run_replication_analytic(model, profile, config, seed);
    }
    if config.arrivals == DistributionFamily::Exponential {
        return crate::shard::run_replication_sharded_spanned(
            model,
            profile,
            config,
            seed,
            collector,
            span_parent,
            sink,
        );
    }
    run_replication_single_calendar_spanned(
        model,
        profile,
        config,
        seed,
        collector,
        span_parent,
        sink,
    )
}

/// Runs one replication on the classic single-calendar engine — the seed
/// reference path: every user's renewal arrival process, every dispatch
/// decision and every station share one global event calendar.
///
/// [`run_replication`] routes here only for non-Poisson arrival models;
/// the function stays public as the cross-validation reference for the
/// sharded engine and the baseline of the `bench --sim` speedup claims.
///
/// # Errors
///
/// As for [`run_replication`].
pub fn run_replication_single_calendar(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
) -> Result<SimulationResult, GameError> {
    run_replication_single_calendar_spanned(model, profile, config, seed, None, None, |_, _| {})
}

/// The spanned form of [`run_replication_single_calendar`].
///
/// # Errors
///
/// As for [`run_replication`].
pub fn run_replication_single_calendar_spanned<F: FnMut(usize, f64)>(
    model: &SystemModel,
    profile: &StrategyProfile,
    config: SimulationConfig,
    seed: u64,
    collector: Option<&Arc<dyn Collector>>,
    span_parent: Option<&SpanHandle>,
    mut sink: F,
) -> Result<SimulationResult, GameError> {
    profile.check_stability(model)?;
    let m = model.num_users();
    let n = model.num_computers();

    let horizon_secs = config.target_jobs as f64 / model.total_arrival_rate();
    let warmup = SimTime::new(horizon_secs * config.warmup_fraction);

    // Independent streams: interarrivals per user, dispatch choices per
    // user, service demands per computer.
    let mut arrival_streams: Vec<RngStream> =
        (0..m).map(|j| RngStream::new(seed, j as u64)).collect();
    let mut dispatch_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (m + j) as u64))
        .collect();
    let mut service_streams: Vec<RngStream> = (0..n)
        .map(|i| RngStream::new(seed, (2 * m + i) as u64))
        .collect();
    let service_dists: Vec<Distribution> = (0..n)
        .map(|i| config.service.distribution(model.computer_rate(i)))
        .collect();
    let arrival_dists: Vec<Distribution> = (0..m)
        .map(|j| config.arrivals.distribution(model.user_rate(j)))
        .collect();

    let mut stations: Vec<FcfsStation> = (0..n).map(|_| FcfsStation::new()).collect();
    let mut monitor = ResponseTimeMonitor::new(m, warmup);
    let mut engine: Engine<Event> = Engine::new();
    engine.set_horizon(SimTime::new(horizon_secs));
    if lb_telemetry::enabled(collector).is_some() {
        engine.set_collector(Arc::clone(collector.expect("enabled implies present")));
    }
    if let Some(parent) = span_parent {
        engine.set_span_parent(parent.clone());
    }

    // Prime the arrival processes.
    for j in 0..m {
        let dt = arrival_streams[j].sample(&arrival_dists[j]);
        engine.schedule_in(dt, Event::Arrival { user: j });
    }

    let mut jobs_generated: u64 = 0;
    while let Some(ev) = engine.next_event() {
        match ev {
            Event::Arrival { user } => {
                // Next arrival of this user (renewal process).
                let dt = arrival_streams[user].sample(&arrival_dists[user]);
                engine.schedule_in(dt, Event::Arrival { user });

                // Dispatch per the user's mixed strategy.
                let fractions = profile.strategy(user).fractions();
                let computer = dispatch_streams[user].categorical(fractions);
                let service = service_streams[computer].sample(&service_dists[computer]);
                jobs_generated += 1;
                let job = Job {
                    id: jobs_generated,
                    user,
                    arrival: engine.now(),
                    service_time: service,
                };
                if let Arrival::StartService(done_at) = stations[computer].arrive(job, engine.now())
                {
                    // Completions may land past the horizon; the engine
                    // simply never delivers those.
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
            Event::Completion { computer } => {
                let (finished, next) = stations[computer].complete(engine.now());
                monitor.record(finished.user, finished.arrival, engine.now());
                if finished.arrival >= warmup {
                    sink(finished.user, engine.now() - finished.arrival);
                }
                if let Some((_, done_at)) = next {
                    engine.schedule_at(done_at, Event::Completion { computer });
                }
            }
        }
    }

    let now = SimTime::new(horizon_secs);
    Ok(SimulationResult {
        user_means: monitor.user_means(),
        system_mean: monitor.system_mean(),
        user_counts: (0..m).map(|j| monitor.count(j)).collect(),
        jobs_generated,
        utilizations: stations.iter().map(|s| s.utilization(now)).collect(),
        horizon: horizon_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_game::schemes::{LoadBalancingScheme, ProportionalScheme};

    fn small() -> (SystemModel, StrategyProfile) {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        (model, profile)
    }

    #[test]
    fn batch_means_agree_with_replication_methodology() {
        // One long run analyzed with batch means must agree with the
        // replication estimator (and with theory) — the methodology
        // ablation behind the paper's §4.1 choice.
        use lb_stats::BatchMeans;
        let (model, profile) = small();
        let mut bm = BatchMeans::new(2_000);
        let cfg = SimulationConfig {
            target_jobs: 120_000,
            ..SimulationConfig::quick()
        };
        // Batch means needs the *global* completion order, so it runs on
        // the single-calendar engine (the sharded sink groups by station).
        let r = run_replication_single_calendar_spanned(
            &model,
            &profile,
            cfg,
            17,
            None,
            None,
            |_, resp| {
                bm.push(resp);
            },
        )
        .unwrap();
        assert!(bm.batches() >= 20, "batches {}", bm.batches());
        assert!(
            (bm.mean() - r.system_mean).abs() < 1e-3 * r.system_mean.max(1e-9) + 1e-4,
            "batch-means {} vs monitor {}",
            bm.mean(),
            r.system_mean
        );
        // Batches of 2000 jobs are big enough to decorrelate.
        let rho1 = bm.lag1_autocorrelation().unwrap();
        assert!(rho1.abs() < 0.4, "lag-1 autocorrelation {rho1}");
        // And the CI covers the analytic value.
        let analytic = lb_game::metrics::evaluate_profile(&model, &profile).unwrap();
        let s = bm.summary(0.95).unwrap();
        assert!(
            (s.mean - analytic.overall_time).abs()
                < 3.0 * s.half_width.max(0.02 * analytic.overall_time),
            "CI [{:.5}, {:.5}] vs theory {:.5}",
            s.ci_low(),
            s.ci_high(),
            analytic.overall_time
        );
    }

    #[test]
    fn sink_sees_only_post_warmup_jobs() {
        let (model, profile) = small();
        let mut count = 0u64;
        let r =
            run_replication_with_sink(&model, &profile, SimulationConfig::quick(), 3, |_, _| {
                count += 1
            })
            .unwrap();
        assert_eq!(count, r.user_counts.iter().sum::<u64>());
        assert!(count < r.jobs_generated, "warmup jobs must be excluded");
    }

    #[test]
    fn replication_is_deterministic_per_seed() {
        let (model, profile) = small();
        let cfg = SimulationConfig::quick();
        let a = run_replication(&model, &profile, cfg, 7).unwrap();
        let b = run_replication(&model, &profile, cfg, 7).unwrap();
        assert_eq!(a.user_means, b.user_means);
        assert_eq!(a.jobs_generated, b.jobs_generated);
        let c = run_replication(&model, &profile, cfg, 8).unwrap();
        assert_ne!(a.user_means, c.user_means);
    }

    #[test]
    fn generates_roughly_target_jobs() {
        let (model, profile) = small();
        let cfg = SimulationConfig::quick();
        let r = run_replication(&model, &profile, cfg, 1).unwrap();
        let target = cfg.target_jobs as f64;
        assert!(
            (r.jobs_generated as f64 - target).abs() < 0.05 * target,
            "generated {} vs target {target}",
            r.jobs_generated
        );
        assert!(r.horizon > 0.0);
    }

    #[test]
    fn empirical_means_match_mm1_theory() {
        // PS on this model: each queue at rho = 0.4 -> F = 1/(mu - lambda).
        let (model, profile) = small();
        let analytic = lb_game::metrics::evaluate_profile(&model, &profile).unwrap();
        let r = run_replication(&model, &profile, SimulationConfig::quick(), 3).unwrap();
        for (sim, theory) in r.user_means.iter().zip(&analytic.user_times) {
            let rel = (sim - theory).abs() / theory;
            assert!(rel < 0.08, "simulated {sim} vs theory {theory} (rel {rel})");
        }
        for (sim, theory) in r.utilizations.iter().zip(&analytic.computer_utilizations) {
            assert!((sim - theory).abs() < 0.05, "util {sim} vs {theory}");
        }
    }

    #[test]
    fn unstable_profile_is_rejected() {
        let model = SystemModel::new(vec![5.0, 100.0], vec![50.0]).unwrap();
        // All flow on the slow computer saturates it.
        let profile =
            StrategyProfile::new(vec![lb_game::strategy::Strategy::singleton(2, 0)]).unwrap();
        assert!(matches!(
            run_replication(&model, &profile, SimulationConfig::quick(), 0),
            Err(GameError::InfeasibleStrategy { .. })
        ));
    }

    #[test]
    fn service_model_distributions_keep_the_mean() {
        let mu = 4.0;
        for model in [
            DistributionFamily::Exponential,
            DistributionFamily::Erlang { k: 3 },
            DistributionFamily::HyperExponential { scv: 4.0 },
            DistributionFamily::Deterministic,
        ] {
            let d = model.distribution(mu);
            assert!(
                (d.mean() - 1.0 / mu).abs() < 1e-12,
                "{model:?} mean {} != {}",
                d.mean(),
                1.0 / mu
            );
            assert!(
                (d.scv() - model.scv()).abs() < 1e-9,
                "{model:?} scv {} != {}",
                d.scv(),
                model.scv()
            );
        }
    }

    #[test]
    #[should_panic(expected = "scv > 1")]
    fn hyperexponential_requires_scv_above_one() {
        DistributionFamily::HyperExponential { scv: 0.5 }.distribution(1.0);
    }

    #[test]
    fn single_queue_matches_pollaczek_khinchine() {
        // One computer, one user, everything routed there: an M/G/1 queue.
        // Validate the simulator against P-K for each service family.
        let model = SystemModel::new(vec![10.0], vec![7.0]).unwrap();
        let profile =
            StrategyProfile::new(vec![lb_game::strategy::Strategy::singleton(1, 0)]).unwrap();
        for service in [
            DistributionFamily::Deterministic,
            DistributionFamily::Erlang { k: 4 },
            DistributionFamily::Exponential,
            DistributionFamily::HyperExponential { scv: 4.0 },
        ] {
            let cfg = SimulationConfig::quick().with_service(service);
            let r = run_replication(&model, &profile, cfg, 11).unwrap();
            let theory = lb_queueing::mg1::response_time(7.0, 10.0, service.scv());
            let rel = (r.system_mean - theory).abs() / theory;
            assert!(
                rel < 0.10,
                "{service:?}: simulated {} vs P-K {theory} (rel {rel:.3})",
                r.system_mean
            );
        }
    }

    #[test]
    fn single_queue_matches_gim1_theory() {
        // One computer, one user, renewal arrivals with exponential
        // service: a GI/M/1 queue with exact theory to compare against.
        use lb_queueing::gim1::{self, Interarrival};
        let model = SystemModel::new(vec![10.0], vec![7.0]).unwrap();
        let profile =
            StrategyProfile::new(vec![lb_game::strategy::Strategy::singleton(1, 0)]).unwrap();
        let cases = [
            (
                DistributionFamily::Deterministic,
                Interarrival::Deterministic,
            ),
            (
                DistributionFamily::Erlang { k: 4 },
                Interarrival::Erlang { k: 4 },
            ),
            (
                DistributionFamily::HyperExponential { scv: 4.0 },
                Interarrival::HyperExponential { scv: 4.0 },
            ),
        ];
        for (family, theory_family) in cases {
            let cfg = SimulationConfig::quick().with_arrivals(family);
            let r = run_replication(&model, &profile, cfg, 31).unwrap();
            let theory = gim1::response_time(theory_family, 7.0, 10.0).unwrap();
            let rel = (r.system_mean - theory).abs() / theory;
            assert!(
                rel < 0.12,
                "{family:?}: simulated {} vs GI/M/1 {theory} (rel {rel:.3})",
                r.system_mean
            );
        }
    }

    #[test]
    fn smoother_arrivals_mean_shorter_waits() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let mean = |fam: DistributionFamily| {
            run_replication(
                &model,
                &profile,
                SimulationConfig::quick().with_arrivals(fam),
                37,
            )
            .unwrap()
            .system_mean
        };
        let det = mean(DistributionFamily::Deterministic);
        let exp = mean(DistributionFamily::Exponential);
        let hyp = mean(DistributionFamily::HyperExponential { scv: 6.0 });
        assert!(det < exp && exp < hyp, "det {det}, exp {exp}, hyp {hyp}");
    }

    #[test]
    fn burstier_service_means_longer_waits() {
        let model = SystemModel::new(vec![10.0, 20.0], vec![6.0, 6.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let mean = |svc: DistributionFamily| {
            run_replication(
                &model,
                &profile,
                SimulationConfig::quick().with_service(svc),
                21,
            )
            .unwrap()
            .system_mean
        };
        let det = mean(DistributionFamily::Deterministic);
        let exp = mean(DistributionFamily::Exponential);
        let hyp = mean(DistributionFamily::HyperExponential { scv: 6.0 });
        assert!(det < exp && exp < hyp, "det {det}, exp {exp}, hyp {hyp}");
    }

    #[test]
    fn user_counts_track_rates() {
        let model = SystemModel::new(vec![30.0], vec![4.0, 8.0]).unwrap();
        let profile = ProportionalScheme.compute(&model).unwrap();
        let r = run_replication(&model, &profile, SimulationConfig::quick(), 5).unwrap();
        // User 1 generates twice user 0's jobs (within sampling noise).
        let ratio = r.user_counts[1] as f64 / r.user_counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }
}
