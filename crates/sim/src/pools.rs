//! Simulation of the **multicore** variant: computers are M/M/c pools
//! ([`lb_des::multiserver::MultiServerStation`]) instead of single-server
//! M/M/1 stations. Used by the multicore extension experiment to verify
//! the numeric pool-game equilibrium against measured response times.

use lb_des::engine::Engine;
use lb_des::monitor::ResponseTimeMonitor;
use lb_des::multiserver::{MultiServerStation, PoolArrival};
use lb_des::rng::RngStream;
use lb_des::station::Job;
use lb_des::time::SimTime;
use lb_game::error::GameError;
use lb_game::latency::Latency;
use lb_game::multicore::PoolSystem;

/// Measurements from one pooled-system replication.
#[derive(Debug, Clone)]
pub struct PoolSimulationResult {
    /// Mean response time per user.
    pub user_means: Vec<f64>,
    /// Job-averaged system response time.
    pub system_mean: f64,
    /// Jobs generated.
    pub jobs_generated: u64,
}

/// Simulates the pool system under the per-user flow matrix `flows`
/// (rows users, columns pools — e.g. a
/// [`lb_game::multicore::PoolNashOutcome`]'s flows).
///
/// # Errors
///
/// * [`GameError::DimensionMismatch`] when `flows` has the wrong shape.
/// * [`GameError::InfeasibleStrategy`] when a pool would be saturated.
pub fn run_pool_replication(
    system: &PoolSystem,
    flows: &[Vec<f64>],
    target_jobs: u64,
    warmup_fraction: f64,
    seed: u64,
) -> Result<PoolSimulationResult, GameError> {
    let m = system.num_users();
    let n = system.num_pools();
    if flows.len() != m || flows.iter().any(|r| r.len() != n) {
        return Err(GameError::DimensionMismatch {
            expected: m,
            actual: flows.len(),
        });
    }
    let totals = system.pool_totals(flows);
    for (t, p) in totals.iter().zip(system.pools()) {
        if *t >= p.capacity() {
            return Err(GameError::InfeasibleStrategy {
                reason: format!("pool saturated: flow {t} vs capacity {}", p.capacity()),
            });
        }
    }

    let phi = system.total_arrival_rate();
    let horizon_secs = target_jobs as f64 / phi;
    let warmup = SimTime::new(horizon_secs * warmup_fraction);

    #[derive(Debug, Clone, Copy)]
    enum Event {
        Arrival { user: usize },
        Completion { pool: usize, job_id: u64 },
    }

    let mut arrival_streams: Vec<RngStream> =
        (0..m).map(|j| RngStream::new(seed, j as u64)).collect();
    let mut dispatch_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (m + j) as u64))
        .collect();
    let mut service_streams: Vec<RngStream> = (0..n)
        .map(|i| RngStream::new(seed, (2 * m + i) as u64))
        .collect();

    let mut pools: Vec<MultiServerStation> = system
        .pools()
        .iter()
        .map(|p| MultiServerStation::new(p.servers))
        .collect();
    let mut monitor = ResponseTimeMonitor::new(m, warmup);
    let mut engine: Engine<Event> = Engine::new();
    engine.set_horizon(SimTime::new(horizon_secs));

    for (j, stream) in arrival_streams.iter_mut().enumerate() {
        let dt = stream.exponential(system.user_rates()[j]);
        engine.schedule_in(dt, Event::Arrival { user: j });
    }

    let mut jobs_generated = 0_u64;
    while let Some(ev) = engine.next_event() {
        match ev {
            Event::Arrival { user } => {
                let dt = arrival_streams[user].exponential(system.user_rates()[user]);
                engine.schedule_in(dt, Event::Arrival { user });

                let pool = dispatch_streams[user].categorical(&flows[user]);
                let service = service_streams[pool].exponential(system.pools()[pool].mu);
                jobs_generated += 1;
                let job = Job {
                    id: jobs_generated,
                    user,
                    arrival: engine.now(),
                    service_time: service,
                };
                if let PoolArrival::StartService(at) = pools[pool].arrive(job, engine.now()) {
                    engine.schedule_at(
                        at,
                        Event::Completion {
                            pool,
                            job_id: job.id,
                        },
                    );
                }
            }
            Event::Completion { pool, job_id } => {
                let (done, next) = pools[pool].complete(job_id, engine.now());
                monitor.record(done.user, done.arrival, engine.now());
                if let Some((promoted, at)) = next {
                    engine.schedule_at(
                        at,
                        Event::Completion {
                            pool,
                            job_id: promoted.id,
                        },
                    );
                }
            }
        }
    }

    Ok(PoolSimulationResult {
        user_means: monitor.user_means(),
        system_mean: monitor.system_mean(),
        jobs_generated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_pool_nash_matches_erlang_c_predictions() {
        let system = PoolSystem::new(vec![(4.0, 3), (10.0, 1)], vec![6.0, 8.0]).unwrap();
        let nash = system.nash(1e-6, 300, 1200).unwrap();
        let result = run_pool_replication(&system, &nash.flows, 120_000, 0.1, 99).unwrap();
        for (j, predicted) in nash.user_times.iter().enumerate() {
            let rel = (result.user_means[j] - predicted).abs() / predicted;
            assert!(
                rel < 0.08,
                "user {j}: simulated {} vs predicted {predicted} (rel {rel:.3})",
                result.user_means[j]
            );
        }
        let overall = system.overall_time(&nash.flows);
        let rel = (result.system_mean - overall).abs() / overall;
        assert!(rel < 0.06, "system: {} vs {overall}", result.system_mean);
    }

    #[test]
    fn shape_and_saturation_are_validated() {
        let system = PoolSystem::new(vec![(4.0, 2)], vec![5.0]).unwrap();
        assert!(matches!(
            run_pool_replication(&system, &[vec![5.0, 0.0]], 1000, 0.1, 0),
            Err(GameError::DimensionMismatch { .. })
        ));
        let saturating = vec![vec![8.0]];
        assert!(matches!(
            run_pool_replication(&system, &saturating, 1000, 0.1, 0),
            Err(GameError::InfeasibleStrategy { .. })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let system = PoolSystem::new(vec![(4.0, 2), (6.0, 2)], vec![9.0]).unwrap();
        let flows = vec![vec![4.0, 5.0]];
        let a = run_pool_replication(&system, &flows, 30_000, 0.1, 5).unwrap();
        let b = run_pool_replication(&system, &flows, 30_000, 0.1, 5).unwrap();
        assert_eq!(a.user_means, b.user_means);
        assert_eq!(a.jobs_generated, b.jobs_generated);
    }
}
