//! Capacity-churn simulation: servers crash, degrade and recover while
//! jobs keep arriving.
//!
//! The run is *quasi-static*: capacity is piecewise-constant over a
//! schedule of [`ChurnPhase`]s. At each phase boundary the dispatcher
//! re-solves the Nash equilibrium for the surviving capacity with
//! [`DynamicBalancer::update_capacity`] (warm-started from the previous
//! equilibrium), shedding load per the configured
//! [`OverloadPolicy`] when the survivors cannot carry the nominal
//! demand. Inside a phase the wiring matches [`crate::scenario`]: Poisson
//! sources, probabilistic dispatch, FCFS M/M/1 stations.
//!
//! The churn mechanics on top:
//!
//! * **admission** — each arrival is admitted with probability
//!   `admitted_j / φ_j` (Poisson thinning, so the admitted stream is
//!   again Poisson at exactly the shed-to rate); refused jobs are
//!   counted *shed*;
//! * **crashes** — a computer whose phase rate drops to zero fails:
//!   its pending completion is cancelled, the preempted and queued jobs
//!   are returned by [`FcfsStation::fail`] and re-submitted under the
//!   capped exponential [`RetryBackoff`] (counted *lost* once the
//!   budget is exhausted); retried jobs re-dispatch under the *current*
//!   equilibrium, so they land on live computers;
//! * **accounting** — a [`GoodputMonitor`] separates served, shed and
//!   lost work; response times are measured from the job's original
//!   admission instant, so retry delays count against the system.
//!
//! Because capacity is piecewise-constant, the analytic prediction is a
//! throughput-weighted mixture of the per-phase equilibrium response
//! times (`lb_game::metrics::evaluate_profile` on each residual game) —
//! [`ChurnResult::predicted_mean`]. Phase-boundary transients and retry
//! delays are not in the prediction, so agreement is expected within
//! simulation confidence intervals when phases are long relative to the
//! queues' relaxation times, which is exactly what the integration tests
//! verify.

pub use lb_des::breakdown::{BreakdownProcess, RetryBackoff};
use lb_des::calendar::EventId;
use lb_des::engine::Engine;
use lb_des::monitor::{GoodputMonitor, ResponseTimeMonitor};
use lb_des::rng::{Distribution, RngStream, SampleBlock};
use lb_des::station::{Arrival, FcfsStation, Job};
use lb_des::time::SimTime;
use lb_game::dynamics::{DynamicBalancer, Restart};
use lb_game::error::GameError;
use lb_game::metrics::evaluate_profile;
use lb_game::model::SystemModel;
use lb_game::overload::OverloadPolicy;
use lb_telemetry::Collector;
use std::collections::HashMap;
use std::sync::Arc;

/// One piece of the piecewise-constant capacity schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPhase {
    /// How long the phase lasts, in seconds.
    pub duration: f64,
    /// Per-computer service rates during the phase (0 = crashed).
    pub capacity: Vec<f64>,
}

/// Measurements and predictions from one churn replication.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Mean response time of served (post-warmup) jobs, measured from
    /// original admission to completion — retry delays included.
    pub measured_mean: f64,
    /// Throughput-weighted mixture of the per-phase analytic equilibrium
    /// response times.
    pub predicted_mean: f64,
    /// The per-phase analytic predictions behind the mixture.
    pub phase_predictions: Vec<f64>,
    /// Jobs served to completion after warmup.
    pub served: u64,
    /// Jobs refused at admission after warmup.
    pub shed: u64,
    /// Jobs lost to an exhausted retry budget after warmup.
    pub lost: u64,
    /// Retry submissions after warmup.
    pub retries: u64,
    /// Measured fraction of offered (post-warmup) jobs that were shed.
    pub shed_fraction: f64,
    /// Predicted shed fraction from the per-phase admission decisions.
    pub predicted_shed_fraction: f64,
    /// Jobs generated over the whole run, warmup included.
    pub jobs_generated: u64,
}

/// Expands a breakdown process on one computer into a phase schedule:
/// alternating up/down phases sampled from the process until `horizon`
/// seconds are covered (the last phase is truncated). The result feeds
/// [`run_churn_replication`], which re-equilibrates at each boundary —
/// stochastic churn with the same machinery, reproducible per seed.
///
/// # Panics
///
/// Panics when `computer` is out of range for `nominal` or `horizon` is
/// non-positive/non-finite.
pub fn breakdown_schedule(
    nominal: &[f64],
    computer: usize,
    process: BreakdownProcess,
    horizon: f64,
    seed: u64,
) -> Vec<ChurnPhase> {
    assert!(computer < nominal.len(), "computer index {computer}");
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be positive and finite, got {horizon}"
    );
    let mut rng = RngStream::new(seed, 0);
    let mut down = nominal.to_vec();
    down[computer] = 0.0;
    let mut phases = Vec::new();
    let mut covered = 0.0;
    let mut up = true;
    while covered < horizon {
        let dur = if up {
            process.sample_uptime(&mut rng)
        } else {
            process.sample_repair(&mut rng)
        };
        let dur = dur.min(horizon - covered);
        phases.push(ChurnPhase {
            duration: dur,
            capacity: if up { nominal.to_vec() } else { down.clone() },
        });
        covered += dur;
        up = !up;
    }
    phases
}

/// A phase with its equilibrium dispatch state resolved.
struct PhaseState {
    start: f64,
    end: f64,
    /// Full-width (m × n) dispatch probabilities; zero columns for
    /// crashed computers.
    rows: Vec<Vec<f64>>,
    /// Per-user admitted rates.
    admitted: Vec<f64>,
    capacity: Vec<f64>,
    predicted_time: f64,
}

/// Events of the churn simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival { user: usize },
    Completion { computer: usize },
    Retry { job: Job, attempts: u32 },
    PhaseChange { next: usize },
}

/// Runs one churn replication: `phases` of piecewise-constant capacity
/// over `model`'s nominal system, shedding per `policy`, retrying
/// crashed-out jobs per `backoff`, discarding the first `warmup`
/// seconds.
///
/// # Errors
///
/// * [`GameError::DimensionMismatch`] when a phase's capacity vector has
///   the wrong width.
/// * [`GameError::Overloaded`] when a phase is infeasible under
///   [`OverloadPolicy::Reject`].
/// * [`GameError::InvalidRate`] on non-finite durations/rates or an
///   empty/too-short schedule.
pub fn run_churn_replication(
    model: &SystemModel,
    phases: &[ChurnPhase],
    policy: OverloadPolicy,
    backoff: RetryBackoff,
    warmup: f64,
    seed: u64,
) -> Result<ChurnResult, GameError> {
    run_churn_replication_traced(model, phases, policy, backoff, warmup, seed, None)
}

/// [`run_churn_replication`] with an optional telemetry collector. When
/// collecting, the run emits one `sim.phase {phase, start, end,
/// admitted_total, capacity_total, predicted_time}` per resolved phase,
/// then `sim.goodput {t, phase, served, shed, lost, retries}` plus a
/// `des.calendar {t, depth, tombstones, compactions, processed}`
/// snapshot at every phase boundary and once at the end of the run; the
/// engine itself reports `des.compact` on tombstone-triggered heap
/// rebuilds. The run is also wrapped in a causal span tree — `sim.churn`
/// → `sim.phase_run` per phase, with the engine's `des.batch` spans
/// under the root. Collection is purely observational — the returned
/// [`ChurnResult`] is bit-identical with or without a collector.
///
/// # Errors
///
/// As [`run_churn_replication`].
#[allow(clippy::too_many_lines)]
pub fn run_churn_replication_traced(
    model: &SystemModel,
    phases: &[ChurnPhase],
    policy: OverloadPolicy,
    backoff: RetryBackoff,
    warmup: f64,
    seed: u64,
    collector: Option<&Arc<dyn Collector>>,
) -> Result<ChurnResult, GameError> {
    let collect = lb_telemetry::enabled(collector);
    let m = model.num_users();
    let n = model.num_computers();
    let horizon: f64 = phases.iter().map(|p| p.duration).sum();
    if phases.is_empty() || !warmup.is_finite() || warmup < 0.0 || warmup >= horizon {
        return Err(GameError::InvalidRate {
            name: "churn warmup/horizon",
            value: if phases.is_empty() { 0.0 } else { warmup },
        });
    }
    for p in phases {
        if !(p.duration.is_finite() && p.duration > 0.0) {
            return Err(GameError::InvalidRate {
                name: "phase duration",
                value: p.duration,
            });
        }
    }

    // Resolve every phase's equilibrium up front: the schedule (and
    // therefore the whole admission trajectory) is a pure function of
    // (model, phases, policy), independent of the event stream.
    let mut balancer = DynamicBalancer::new(model.clone(), 1e-6)?;
    let mut states: Vec<PhaseState> = Vec::with_capacity(phases.len());
    let mut clock = 0.0;
    for p in phases {
        let step = balancer.update_capacity(&p.capacity, policy, Restart::Warm)?;
        let live = step.live_computers.clone();
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                let mut full = vec![0.0; n];
                for (c, &i) in live.iter().enumerate() {
                    full[i] = balancer.equilibrium().strategy(j).fraction(c);
                }
                full
            })
            .collect();
        let analytic = evaluate_profile(balancer.model(), balancer.equilibrium())?;
        states.push(PhaseState {
            start: clock,
            end: clock + p.duration,
            rows,
            admitted: step.plan.admitted.clone(),
            capacity: p.capacity.clone(),
            predicted_time: analytic.overall_time,
        });
        clock += p.duration;
    }
    if let Some(c) = collect {
        for (k, s) in states.iter().enumerate() {
            c.emit(
                "sim.phase",
                &[
                    ("phase", (k as u64).into()),
                    ("start", s.start.into()),
                    ("end", s.end.into()),
                    ("admitted_total", s.admitted.iter().sum::<f64>().into()),
                    ("capacity_total", s.capacity.iter().sum::<f64>().into()),
                    ("predicted_time", s.predicted_time.into()),
                ],
            );
        }
    }

    // Analytic mixture over the post-warmup window, weighted by each
    // phase's admitted throughput (= its share of served jobs).
    let nominal_total: f64 = model.user_rates().iter().sum();
    let mut weighted = 0.0;
    let mut weight = 0.0;
    let mut shed_weight = 0.0;
    let mut offered_weight = 0.0;
    for s in &states {
        let dur = (s.end.min(horizon) - s.start.max(warmup)).max(0.0);
        let admitted_total: f64 = s.admitted.iter().sum();
        weighted += admitted_total * dur * s.predicted_time;
        weight += admitted_total * dur;
        shed_weight += (nominal_total - admitted_total) * dur;
        offered_weight += nominal_total * dur;
    }
    let predicted_mean = if weight > 0.0 { weighted / weight } else { 0.0 };
    let predicted_shed_fraction = if offered_weight > 0.0 {
        shed_weight / offered_weight
    } else {
        0.0
    };

    // Independent streams: interarrivals per user, admission coins per
    // user, dispatch choices per user, service demands per computer.
    let mut arrival_streams: Vec<RngStream> =
        (0..m).map(|j| RngStream::new(seed, j as u64)).collect();
    // Each user's interarrival rate is constant over the whole run
    // (admission is a thinning coin, not a rate change), so the draws can
    // be buffered in blocks — same uniforms, same arithmetic, hence
    // bit-identical to per-call sampling, but vectorized.
    let mut arrival_blocks: Vec<SampleBlock> = (0..m)
        .map(|j| {
            SampleBlock::new(
                Distribution::Exponential {
                    rate: model.user_rate(j),
                },
                lb_des::shard::DEFAULT_SHARD_BATCH,
            )
        })
        .collect();
    let mut admission_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (m + j) as u64))
        .collect();
    let mut dispatch_streams: Vec<RngStream> = (0..m)
        .map(|j| RngStream::new(seed, (2 * m + j) as u64))
        .collect();
    let mut service_streams: Vec<RngStream> = (0..n)
        .map(|i| RngStream::new(seed, (3 * m + i) as u64))
        .collect();

    let mut stations: Vec<FcfsStation> = (0..n).map(|_| FcfsStation::new()).collect();
    let mut completion_ev: Vec<Option<EventId>> = vec![None; n];
    let warmup_t = SimTime::new(warmup);
    let mut monitor = ResponseTimeMonitor::new(m, warmup_t);
    let mut goodput = GoodputMonitor::new(warmup_t);
    // Retries already spent per in-flight job (absent = none yet).
    let mut attempts: HashMap<u64, u32> = HashMap::new();
    let mut engine: Engine<Event> = Engine::new();
    engine.set_horizon(SimTime::new(horizon));
    if collect.is_some() {
        engine.set_collector(Arc::clone(collector.expect("enabled implies present")));
    }
    // Causal spans: one `sim.churn` root for the replication, one
    // `sim.phase_run` child per capacity phase (wall time spent
    // simulating that phase), and the engine's `des.batch` spans hanging
    // off the root.
    let churn_span = lb_telemetry::Span::root(
        collector,
        "sim.churn",
        &[
            ("seed", seed.into()),
            ("phases", (states.len() as u64).into()),
            ("horizon", horizon.into()),
        ],
    );
    if let Some(span) = &churn_span {
        engine.set_span_parent(span.handle());
    }
    let mut phase_span = churn_span
        .as_ref()
        .map(|s| s.child("sim.phase_run", &[("phase", 0u64.into())]));

    for (j, stream) in arrival_streams.iter_mut().enumerate() {
        let dt = arrival_blocks[j].next(stream);
        engine.schedule_in(dt, Event::Arrival { user: j });
    }
    for (k, s) in states.iter().enumerate().skip(1) {
        engine.schedule_at(SimTime::new(s.start), Event::PhaseChange { next: k });
    }

    let mut current = 0usize;
    let mut jobs_generated: u64 = 0;

    // Dispatches `job` per the current phase's equilibrium and schedules
    // its completion if service starts immediately.
    let dispatch = |job: Job,
                    phase: &PhaseState,
                    stations: &mut [FcfsStation],
                    completion_ev: &mut [Option<EventId>],
                    dispatch_streams: &mut [RngStream],
                    service_streams: &mut [RngStream],
                    engine: &mut Engine<Event>| {
        let computer = dispatch_streams[job.user].categorical(&phase.rows[job.user]);
        let job = Job {
            service_time: service_streams[computer].exponential(phase.capacity[computer]),
            ..job
        };
        if let Arrival::StartService(done_at) = stations[computer].arrive(job, engine.now()) {
            completion_ev[computer] =
                Some(engine.schedule_at(done_at, Event::Completion { computer }));
        }
    };

    while let Some(ev) = engine.next_event() {
        match ev {
            Event::Arrival { user } => {
                let dt = arrival_blocks[user].next(&mut arrival_streams[user]);
                engine.schedule_in(dt, Event::Arrival { user });
                let phase = &states[current];
                // Poisson thinning implements the admission decision.
                let admit_p = phase.admitted[user] / model.user_rate(user);
                if admission_streams[user].uniform01() >= admit_p {
                    goodput.record_shed(engine.now());
                    continue;
                }
                jobs_generated += 1;
                let job = Job {
                    id: jobs_generated,
                    user,
                    arrival: engine.now(),
                    service_time: 0.0, // sampled at dispatch
                };
                dispatch(
                    job,
                    phase,
                    &mut stations,
                    &mut completion_ev,
                    &mut dispatch_streams,
                    &mut service_streams,
                    &mut engine,
                );
            }
            Event::Completion { computer } => {
                completion_ev[computer] = None;
                let (finished, next) = stations[computer].complete(engine.now());
                monitor.record(finished.user, finished.arrival, engine.now());
                goodput.record_served(engine.now());
                attempts.remove(&finished.id);
                if let Some((_, done_at)) = next {
                    completion_ev[computer] =
                        Some(engine.schedule_at(done_at, Event::Completion { computer }));
                }
            }
            Event::Retry { job, attempts: a } => {
                goodput.record_retry(engine.now());
                attempts.insert(job.id, a);
                dispatch(
                    job,
                    &states[current],
                    &mut stations,
                    &mut completion_ev,
                    &mut dispatch_streams,
                    &mut service_streams,
                    &mut engine,
                );
            }
            Event::PhaseChange { next } => {
                let old = current;
                current = next;
                for i in 0..n {
                    let was_up = states[old].capacity[i] > 0.0;
                    let is_up = states[next].capacity[i] > 0.0;
                    if was_up && !is_up {
                        if let Some(id) = completion_ev[i].take() {
                            engine.cancel(id);
                        }
                        for job in stations[i].fail(engine.now()) {
                            let spent = attempts.remove(&job.id).unwrap_or(0);
                            match backoff.delay(spent) {
                                Some(d) => {
                                    engine.schedule_in(
                                        d,
                                        Event::Retry {
                                            job,
                                            attempts: spent + 1,
                                        },
                                    );
                                }
                                None => goodput.record_lost(engine.now()),
                            }
                        }
                    }
                }
                if let Some(c) = collect {
                    emit_churn_snapshot(c, &engine, &goodput, next);
                }
                if let Some(prev) = phase_span.take() {
                    prev.close_with(&[("t", engine.now().as_secs().into())]);
                }
                phase_span = churn_span
                    .as_ref()
                    .map(|s| s.child("sim.phase_run", &[("phase", (next as u64).into())]));
            }
        }
    }
    if let Some(c) = collect {
        emit_churn_snapshot(c, &engine, &goodput, current);
    }
    if let Some(span) = phase_span.take() {
        span.close_with(&[("t", engine.now().as_secs().into())]);
    }
    if let Some(span) = churn_span {
        span.close_with(&[
            ("served", goodput.served().into()),
            ("shed", goodput.shed().into()),
            ("lost", goodput.lost().into()),
        ]);
    }

    let offered = goodput.served() + goodput.shed() + goodput.lost();
    Ok(ChurnResult {
        measured_mean: monitor.system_mean(),
        predicted_mean,
        phase_predictions: states.iter().map(|s| s.predicted_time).collect(),
        served: goodput.served(),
        shed: goodput.shed(),
        lost: goodput.lost(),
        retries: goodput.retries(),
        shed_fraction: if offered > 0 {
            goodput.shed() as f64 / offered as f64
        } else {
            0.0
        },
        predicted_shed_fraction,
        jobs_generated,
    })
}

/// Emits the goodput tally and a calendar-health snapshot for the
/// current instant — called at every phase boundary and once at the end
/// of a traced churn run.
fn emit_churn_snapshot(
    c: &dyn Collector,
    engine: &Engine<Event>,
    goodput: &GoodputMonitor,
    phase: usize,
) {
    let t = engine.now().as_secs();
    c.emit(
        "sim.goodput",
        &[
            ("t", t.into()),
            ("phase", (phase as u64).into()),
            ("served", goodput.served().into()),
            ("shed", goodput.shed().into()),
            ("lost", goodput.lost().into()),
            ("retries", goodput.retries().into()),
        ],
    );
    c.emit(
        "des.calendar",
        &[
            ("t", t.into()),
            ("depth", engine.calendar_depth().into()),
            ("tombstones", engine.calendar_tombstones().into()),
            ("compactions", engine.calendar_compactions().into()),
            ("processed", engine.events_processed().into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nominal system: Σφ = 28 against Σμ = 60. Crashing the fast
    /// computer leaves 30, so a 0.8-headroom policy sheds to 24.
    fn model() -> SystemModel {
        SystemModel::new(vec![10.0, 20.0, 30.0], vec![16.0, 12.0]).unwrap()
    }

    fn backoff() -> RetryBackoff {
        RetryBackoff::new(0.05, 2.0, 1.0, 5)
    }

    fn crash_phases() -> Vec<ChurnPhase> {
        vec![
            ChurnPhase {
                duration: 400.0,
                capacity: vec![10.0, 20.0, 30.0],
            },
            ChurnPhase {
                duration: 400.0,
                capacity: vec![10.0, 20.0, 0.0],
            },
            ChurnPhase {
                duration: 400.0,
                capacity: vec![10.0, 20.0, 30.0],
            },
        ]
    }

    #[test]
    fn churn_replication_is_deterministic_per_seed() {
        let m = model();
        let run = |seed| {
            run_churn_replication(
                &m,
                &crash_phases(),
                OverloadPolicy::ShedProportional { headroom: 0.8 },
                backoff(),
                100.0,
                seed,
            )
            .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.measured_mean, b.measured_mean);
        assert_eq!(a.served, b.served);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.retries, b.retries);
        let c = run(8);
        assert_ne!(a.measured_mean, c.measured_mean);
        // The prediction is seed-independent.
        assert_eq!(a.predicted_mean, c.predicted_mean);
    }

    #[test]
    fn collector_sees_phases_and_goodput_without_perturbing_the_run() {
        use lb_telemetry::MemoryCollector;
        let m = model();
        let policy = OverloadPolicy::ShedProportional { headroom: 0.8 };
        let plain =
            run_churn_replication(&m, &crash_phases(), policy, backoff(), 100.0, 7).unwrap();
        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        let traced = run_churn_replication_traced(
            &m,
            &crash_phases(),
            policy,
            backoff(),
            100.0,
            7,
            Some(&collector),
        )
        .unwrap();
        assert_eq!(
            plain.measured_mean.to_bits(),
            traced.measured_mean.to_bits()
        );
        assert_eq!(plain.served, traced.served);
        assert_eq!(plain.shed, traced.shed);
        assert_eq!(plain.lost, traced.lost);
        assert_eq!(plain.retries, traced.retries);
        assert_eq!(plain.jobs_generated, traced.jobs_generated);
        // One sim.phase per schedule entry; a goodput + calendar snapshot
        // at each of the two phase boundaries plus one at the end.
        assert_eq!(mem.count("sim.phase"), 3);
        assert_eq!(mem.count("sim.goodput"), 3);
        assert_eq!(mem.count("des.calendar"), 3);
        // Span tree: balanced, with the churn root, one phase interval
        // per schedule entry, and at least one engine batch span.
        use lb_telemetry::{FieldValue, SPAN_CLOSE, SPAN_OPEN};
        assert_eq!(mem.count(SPAN_OPEN), mem.count(SPAN_CLOSE));
        let span_names: Vec<String> = mem
            .events()
            .iter()
            .filter(|(n, _)| *n == SPAN_OPEN)
            .map(
                |(_, fields)| match &fields.iter().find(|(k, _)| *k == "name").unwrap().1 {
                    FieldValue::Str(s) => s.to_string(),
                    other => panic!("name was {other:?}"),
                },
            )
            .collect();
        assert_eq!(span_names.iter().filter(|n| *n == "sim.churn").count(), 1);
        assert_eq!(
            span_names.iter().filter(|n| *n == "sim.phase_run").count(),
            3
        );
        assert!(span_names.iter().any(|n| n == "des.batch"));
    }

    #[test]
    fn shedding_matches_the_admission_decision() {
        let m = model();
        let r = run_churn_replication(
            &m,
            &crash_phases(),
            OverloadPolicy::ShedProportional { headroom: 0.8 },
            backoff(),
            100.0,
            3,
        )
        .unwrap();
        // Phase 2 sheds 28 − 24 = 4 of 28 jobs/s for 400 of 1100
        // post-warmup seconds: expect ≈ 4/28 · 400/1100 ≈ 5.2% shed.
        assert!(
            (r.shed_fraction - r.predicted_shed_fraction).abs() < 0.01,
            "measured shed {} vs predicted {}",
            r.shed_fraction,
            r.predicted_shed_fraction
        );
        // Crashing a busy station forces retries, but the budget saves
        // nearly all of them.
        assert!(r.retries > 0, "no retries recorded");
        assert!(
            (r.lost as f64) < 0.001 * r.served as f64,
            "lost {} vs served {}",
            r.lost,
            r.served
        );
    }

    #[test]
    fn reject_policy_refuses_an_infeasible_schedule() {
        // Losing both fast computers leaves 10 jobs/s against demand 28:
        // infeasible outright, so Reject must refuse the schedule (the
        // shed policies would thin the demand instead).
        let m = model();
        let phases = vec![
            ChurnPhase {
                duration: 100.0,
                capacity: vec![10.0, 20.0, 30.0],
            },
            ChurnPhase {
                duration: 100.0,
                capacity: vec![10.0, 0.0, 0.0],
            },
        ];
        let err = run_churn_replication(&m, &phases, OverloadPolicy::Reject, backoff(), 10.0, 3)
            .unwrap_err();
        assert!(matches!(err, GameError::Overloaded { .. }), "{err:?}");
    }

    #[test]
    fn feasible_churn_sheds_nothing() {
        // Light load: 6 jobs/s always fits, even on one computer.
        let m = SystemModel::new(vec![10.0, 20.0, 30.0], vec![4.0, 2.0]).unwrap();
        let r = run_churn_replication(
            &m,
            &crash_phases(),
            OverloadPolicy::ShedProportional { headroom: 0.8 },
            backoff(),
            100.0,
            3,
        )
        .unwrap();
        assert_eq!(r.shed, 0);
        assert_eq!(r.predicted_shed_fraction, 0.0);
    }

    #[test]
    fn breakdown_schedule_covers_the_horizon_and_alternates() {
        let process = BreakdownProcess::new(300.0, 60.0);
        let phases = breakdown_schedule(&[10.0, 20.0, 30.0], 2, process, 1200.0, 5);
        let total: f64 = phases.iter().map(|p| p.duration).sum();
        assert!((total - 1200.0).abs() < 1e-9, "covers {total}");
        for (k, p) in phases.iter().enumerate() {
            let expect_up = k % 2 == 0;
            assert_eq!(p.capacity[2] > 0.0, expect_up, "phase {k} alternation");
            assert_eq!(p.capacity[0], 10.0);
        }
        // Same seed, same schedule; different seed, different schedule.
        let again = breakdown_schedule(&[10.0, 20.0, 30.0], 2, process, 1200.0, 5);
        assert_eq!(phases, again);
        let other = breakdown_schedule(&[10.0, 20.0, 30.0], 2, process, 1200.0, 6);
        assert_ne!(phases, other);
    }

    #[test]
    fn rejects_bad_schedules() {
        let m = model();
        let policy = OverloadPolicy::ShedProportional { headroom: 0.8 };
        assert!(run_churn_replication(&m, &[], policy, backoff(), 0.0, 1).is_err());
        let phases = vec![ChurnPhase {
            duration: 10.0,
            capacity: vec![10.0, 20.0, 30.0],
        }];
        // Warmup past the horizon.
        assert!(run_churn_replication(&m, &phases, policy, backoff(), 10.0, 1).is_err());
        // Wrong capacity width.
        let bad = vec![ChurnPhase {
            duration: 10.0,
            capacity: vec![10.0],
        }];
        assert!(run_churn_replication(&m, &bad, policy, backoff(), 1.0, 1).is_err());
    }
}
