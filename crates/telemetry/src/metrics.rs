//! A process-local metrics registry: counters, gauges, and log-linear
//! histograms with streaming p50/p95/p99 — exportable as JSON and as
//! Prometheus text exposition format.

use crate::json::{escape_str, fmt_f64};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Linear sub-buckets per power-of-two octave. Eight sub-buckets bound
/// the relative quantile error by 1/8 = 12.5% within an octave.
const SUBS_PER_OCTAVE: i64 = 8;

/// A log-linear histogram: values are bucketed by octave
/// (`floor(log2 v)`) and then linearly within the octave. Memory is
/// proportional to the number of *occupied* buckets, and quantiles are
/// answered with bounded relative error without storing samples.
#[derive(Debug, Default, Clone)]
pub struct LogLinearHistogram {
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogLinearHistogram {
    /// Bucket key for a value. Non-positive and non-finite values share
    /// the lowest bucket (they are still tracked in min/max/sum).
    fn key(v: f64) -> i64 {
        if !v.is_finite() || v <= 0.0 {
            return i64::MIN;
        }
        let octave = v.log2().floor();
        let octave = octave.clamp(-1024.0, 1024.0) as i64;
        let base = (octave as f64).exp2();
        let sub = (((v / base) - 1.0) * SUBS_PER_OCTAVE as f64).floor() as i64;
        octave * SUBS_PER_OCTAVE + sub.clamp(0, SUBS_PER_OCTAVE - 1)
    }

    /// Upper bound of a bucket — the representative value quantile
    /// queries report.
    fn upper_bound(key: i64) -> f64 {
        if key == i64::MIN {
            return 0.0;
        }
        let octave = key.div_euclid(SUBS_PER_OCTAVE);
        let sub = key.rem_euclid(SUBS_PER_OCTAVE);
        (octave as f64).exp2() * (1.0 + (sub + 1) as f64 / SUBS_PER_OCTAVE as f64)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        *self.buckets.entry(Self::key(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th observation, clamped to the observed
    /// min/max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&key, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let ub = Self::upper_bound(key);
                // A NaN observation poisons min/max; `f64::clamp`
                // panics on NaN bounds, so skip the clamp then.
                return Some(if self.min.is_nan() || self.max.is_nan() {
                    ub
                } else {
                    ub.clamp(self.min, self.max)
                });
            }
        }
        Some(self.max)
    }

    /// A summary snapshot (count, sum, min, max, p50/p95/p99).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
            p50: self.quantile(0.50).unwrap_or(f64::NAN),
            p95: self.quantile(0.95).unwrap_or(f64::NAN),
            p99: self.quantile(0.99).unwrap_or(f64::NAN),
        }
    }
}

/// Point-in-time summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`NaN` when empty).
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogLinearHistogram>,
    help: BTreeMap<String, String>,
}

/// A thread-safe registry of named metrics. Names are free-form dotted
/// paths (`ring.hops`); the Prometheus exporter sanitizes them.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter, creating it at zero.
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.insert(name.to_string(), v);
    }

    /// Attaches a help string to a metric, rendered as a `# HELP` line
    /// by [`MetricsRegistry::to_prometheus`] (with `\` and newlines
    /// escaped per the exposition format).
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Records an observation into a histogram, creating it on first
    /// use.
    pub fn observe(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics lock");
        inner.gauges.get(name).copied()
    }

    /// Snapshot of a histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock().expect("metrics lock");
        inner.histograms.get(name).map(LogLinearHistogram::snapshot)
    }

    /// Renders every metric as a single JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in inner.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_str(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in inner.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_str(&mut out, name);
            out.push_str(": ");
            fmt_f64(&mut out, *v);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            let s = h.snapshot();
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_str(&mut out, name);
            let _ = write!(out, ": {{\"count\": {}, \"sum\": ", s.count);
            fmt_f64(&mut out, s.sum);
            for (label, v) in [
                ("min", s.min),
                ("max", s.max),
                ("p50", s.p50),
                ("p95", s.p95),
                ("p99", s.p99),
            ] {
                let _ = write!(out, ", \"{label}\": ");
                fmt_f64(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders every metric in Prometheus text exposition format.
    /// Histograms are exported as summaries with `quantile` labels plus
    /// derived `_min`/`_max` gauge series (each with its own
    /// `# TYPE`/`# HELP` metadata). Help strings
    /// ([`MetricsRegistry::describe`]) and label values go through
    /// [`escape_help`]/[`escape_label_value`], so metadata containing
    /// `\`, `"`, or newlines cannot corrupt the exposition. Non-finite
    /// sample values render as Prometheus' `+Inf`/`-Inf`/`NaN` (Rust's
    /// `Display` would write `inf`, which scrapers reject). The output
    /// always satisfies [`validate_exposition`], which the test suite
    /// round-trips.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = String::new();
        let help_line = |out: &mut String, name: &str, prom: &str| {
            if let Some(help) = inner.help.get(name) {
                let _ = write!(out, "# HELP {prom} ");
                escape_help(out, help);
                out.push('\n');
            }
        };
        for (name, v) in &inner.counters {
            let prom = prom_name(name);
            help_line(&mut out, name, &prom);
            let _ = writeln!(out, "# TYPE {prom} counter");
            let _ = writeln!(out, "{prom} {v}");
        }
        for (name, v) in &inner.gauges {
            let prom = prom_name(name);
            help_line(&mut out, name, &prom);
            let _ = writeln!(out, "# TYPE {prom} gauge");
            let _ = writeln!(out, "{prom} {}", fmt_prom_value(*v));
        }
        for (name, h) in &inner.histograms {
            let prom = prom_name(name);
            help_line(&mut out, name, &prom);
            let s = h.snapshot();
            let _ = writeln!(out, "# TYPE {prom} summary");
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let _ = write!(out, "{prom}{{quantile=\"");
                escape_label_value(&mut out, q);
                let _ = writeln!(out, "\"}} {}", fmt_prom_value(v));
            }
            let _ = writeln!(out, "{prom}_sum {}", fmt_prom_value(s.sum));
            let _ = writeln!(out, "{prom}_count {}", s.count);
            // The extreme-value gauges are separate metric families
            // (`_min`/`_max` are not summary series), so each carries
            // its own TYPE/HELP metadata.
            for (suffix, what, v) in [("min", "Smallest", s.min), ("max", "Largest", s.max)] {
                let _ = writeln!(
                    out,
                    "# HELP {prom}_{suffix} {what} value observed by the {prom} summary."
                );
                let _ = writeln!(out, "# TYPE {prom}_{suffix} gauge");
                let _ = writeln!(out, "{prom}_{suffix} {}", fmt_prom_value(v));
            }
        }
        out
    }
}

/// Formats a sample value per the Prometheus text exposition format:
/// non-finite values are spelled `+Inf` / `-Inf` / `NaN` (Rust's
/// `Display` writes `inf`, which the format does not accept); finite
/// values use the shortest round-trip form.
pub fn fmt_prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Strictly validates Prometheus text exposition format, line by line:
/// `# HELP`/`# TYPE` grammar (known types, no duplicates, declared
/// before any sample of the family), metric and label name charsets,
/// well-formed label escaping, and values that are either `+Inf` /
/// `-Inf` / `NaN` or plain finite numbers (`inf`, `Infinity`, hex and
/// friends are rejected even though Rust's `f64::from_str` accepts
/// them). Samples whose family has no `# TYPE` are rejected — with the
/// usual `_sum`/`_count`/`_bucket` suffixes resolving to their summary
/// or histogram parent.
///
/// # Errors
///
/// A `line N: <problem>` description of the first violation.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    let mut helped: BTreeSet<&str> = BTreeSet::new();
    let mut sampled: BTreeSet<&str> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let fail = |msg: String| Err(format!("line {ln}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, help)) = rest.split_once(' ') else {
                return fail("HELP without docstring".into());
            };
            check_metric_name(name).map_err(|e| format!("line {ln}: {e}"))?;
            if !helped.insert(name) {
                return fail(format!("duplicate HELP for `{name}`"));
            }
            check_escapes(help, false).map_err(|e| format!("line {ln}: {e}"))?;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                return fail("TYPE without a type".into());
            };
            check_metric_name(name).map_err(|e| format!("line {ln}: {e}"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return fail(format!("unknown type `{kind}`"));
            }
            if types.insert(name, kind).is_some() {
                return fail(format!("duplicate TYPE for `{name}`"));
            }
            if sampled.contains(name) {
                return fail(format!("TYPE for `{name}` after its samples"));
            }
        } else if line.starts_with('#') {
            return fail(format!("unrecognized comment `{line}`"));
        } else {
            let (name, value) = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
            let family = resolve_family(name, &types);
            match family {
                Some(f) => {
                    sampled.insert(f);
                    // The series name itself also counts as sampled, so
                    // a later TYPE for e.g. `x_sum` is caught.
                    sampled.insert(name);
                }
                None => return fail(format!("sample `{name}` has no TYPE metadata")),
            }
            check_prom_value(value).map_err(|e| format!("line {ln}: {e}"))?;
        }
    }
    Ok(())
}

/// The declared family a sample series belongs to, honoring the
/// summary/histogram child-series suffixes.
fn resolve_family<'a>(name: &'a str, types: &BTreeMap<&'a str, &str>) -> Option<&'a str> {
    if let Some((n, _)) = types.get_key_value(name) {
        return Some(n);
    }
    for (suffix, kinds) in [
        ("_sum", &["summary", "histogram"][..]),
        ("_count", &["summary", "histogram"][..]),
        ("_bucket", &["histogram"][..]),
    ] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some((n, k)) = types.get_key_value(base) {
                if kinds.contains(k) {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// Splits a sample line into `(series_name, value_text)` after
/// validating the metric name, label names, and label-value escaping.
fn parse_sample(line: &str) -> Result<(&str, &str), String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("malformed sample `{line}`"))?;
    let name = &line[..name_end];
    check_metric_name(name)?;
    let rest = &line[name_end..];
    let value = if let Some(labels) = rest.strip_prefix('{') {
        let close = find_label_close(labels)
            .ok_or_else(|| format!("unterminated label set in `{line}`"))?;
        check_labels(&labels[..close])?;
        labels[close + 1..]
            .strip_prefix(' ')
            .ok_or_else(|| format!("missing value after labels in `{line}`"))?
    } else {
        rest.strip_prefix(' ')
            .ok_or_else(|| format!("missing value in `{line}`"))?
    };
    // An optional timestamp may follow the value; we emit none, and a
    // strict validator flags anything after it.
    let mut parts = value.split(' ');
    let v = parts.next().unwrap_or_default();
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp `{ts}`"))?;
    }
    if parts.next().is_some() {
        return Err(format!("trailing data after value in `{line}`"));
    }
    Ok((name, v))
}

/// Byte offset of the unescaped closing `}` of a label set.
fn find_label_close(labels: &str) -> Option<usize> {
    let bytes = labels.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1, // skip escaped char
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Validates `name="value",...` label pairs.
fn check_labels(labels: &str) -> Result<(), String> {
    let mut rest = labels;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{labels}`"))?;
        let lname = &rest[..eq];
        check_label_name(lname)?;
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted value for label `{lname}`"))?;
        let mut end = None;
        let bytes = after.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 1,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let end = end.ok_or_else(|| format!("unterminated value for label `{lname}`"))?;
        check_escapes(&after[..end], true)?;
        rest = &after[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("expected `,` between labels in `{labels}`"));
        }
    }
    Ok(())
}

/// Validates the escape discipline of a HELP docstring or (with
/// `quotes_must_escape`) a label value.
fn check_escapes(text: &str, quotes_must_escape: bool) -> Result<(), String> {
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\' | 'n') => {}
                Some('"') if quotes_must_escape => {}
                other => return Err(format!("bad escape `\\{:?}`", other)),
            },
            '"' if quotes_must_escape => return Err("unescaped quote in label value".into()),
            _ => {}
        }
    }
    Ok(())
}

fn check_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(())
}

fn check_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("invalid label name `{name}`"));
    }
    Ok(())
}

/// Validates a sample value: `+Inf` / `-Inf` / `NaN` or a plain finite
/// number. Rust's permissive spellings (`inf`, `Infinity`, `nan`) are
/// rejected — Prometheus scrapers do not accept them.
fn check_prom_value(v: &str) -> Result<(), String> {
    if matches!(v, "+Inf" | "-Inf" | "NaN") {
        return Ok(());
    }
    if !v
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
    {
        return Err(format!("bad sample value `{v}`"));
    }
    match v.parse::<f64>() {
        Ok(f) if f.is_finite() => Ok(()),
        _ => Err(format!("bad sample value `{v}`")),
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and line
/// feed become `\\`, `\"`, and `\n` per the text exposition format.
pub fn escape_label_value(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Escapes a `# HELP` docstring: backslash and line feed become `\\`
/// and `\n` (double quotes are legal in help text and pass through).
pub fn escape_help(out: &mut String, help: &str) {
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Sanitizes a dotted metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing `lb_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("lb_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn histogram_quantiles_have_bounded_relative_error() {
        let mut h = LogLinearHistogram::default();
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        for (q, exact) in [(s.p50, 500.0), (s.p95, 950.0), (s.p99, 990.0)] {
            let rel = (q - exact).abs() / exact;
            assert!(rel <= 0.125 + 1e-9, "estimate {q} vs exact {exact}");
            assert!(
                q >= exact * 0.999,
                "quantile must not underestimate: {q} < {exact}"
            );
        }
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let mut h = LogLinearHistogram::default();
        assert!(h.quantile(0.5).is_none());
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(5.0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 5.0);
        assert!(s.p50 >= -3.0 && s.p50 <= 5.0);
    }

    #[test]
    fn registry_tracks_all_three_kinds() {
        let reg = MetricsRegistry::new();
        reg.inc("ring.hops", 3);
        reg.inc("ring.hops", 2);
        reg.set_gauge("calendar.depth", 17.0);
        for v in [1.0, 2.0, 4.0] {
            reg.observe("sweep.norm", v);
        }
        assert_eq!(reg.counter("ring.hops"), 5);
        assert_eq!(reg.gauge("calendar.depth"), Some(17.0));
        let h = reg.histogram("sweep.norm").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 7.0);
        assert_eq!(reg.counter("absent"), 0);
        assert!(reg.gauge("absent").is_none());
        assert!(reg.histogram("absent").is_none());
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let reg = MetricsRegistry::new();
        reg.inc("a.count", 1);
        reg.set_gauge("b.level", 2.5);
        reg.observe("c.time", 10.0);
        let text = reg.to_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.count").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("b.level").unwrap().as_f64(),
            Some(2.5)
        );
        let hist = v.get("histograms").unwrap().get("c.time").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert!(hist.get("p95").unwrap().as_f64().is_some());
    }

    #[test]
    fn histogram_empty_quantiles_are_nan() {
        let h = LogLinearHistogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.min.is_nan() && s.max.is_nan());
        assert!(s.p50.is_nan(), "p50 of empty histogram: {}", s.p50);
        assert!(s.p95.is_nan(), "p95 of empty histogram: {}", s.p95);
        assert!(s.p99.is_nan(), "p99 of empty histogram: {}", s.p99);
    }

    #[test]
    fn histogram_single_sample_quantiles_are_the_sample() {
        for v in [1e-6, 0.5, 1.0, 7.3, 1e9] {
            let mut h = LogLinearHistogram::default();
            h.observe(v);
            let s = h.snapshot();
            assert_eq!(s.count, 1);
            assert_eq!(s.sum, v);
            for (label, q) in [("p50", s.p50), ("p95", s.p95), ("p99", s.p99)] {
                assert_eq!(q, v, "{label} of single sample {v}");
            }
        }
    }

    #[test]
    fn histogram_identical_samples_collapse_to_the_value() {
        // All-identical values occupy one bucket; min/max clamping must
        // make every quantile exact, not the bucket's upper bound.
        let mut h = LogLinearHistogram::default();
        for _ in 0..1000 {
            h.observe(42.5);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 42.5);
        assert_eq!(s.max, 42.5);
        for (label, q) in [("p50", s.p50), ("p95", s.p95), ("p99", s.p99)] {
            assert_eq!(q, 42.5, "{label} of identical samples");
        }
    }

    #[test]
    fn label_values_and_help_strings_are_escaped() {
        let mut out = String::new();
        escape_label_value(&mut out, "a\\b\"c\nd");
        assert_eq!(out, "a\\\\b\\\"c\\nd");

        let mut out = String::new();
        escape_help(&mut out, "line one\nwith \\ and \"quotes\"");
        assert_eq!(out, "line one\\nwith \\\\ and \"quotes\"");
    }

    #[test]
    fn prometheus_help_lines_are_emitted_escaped() {
        let reg = MetricsRegistry::new();
        reg.inc("ring.hops", 1);
        reg.describe("ring.hops", "token hops\nacross the \\ ring");
        reg.set_gauge("calendar.depth", 2.0);
        reg.observe("sweep.norm", 1.0);
        reg.describe("sweep.norm", "per-sweep L1 norm");
        let text = reg.to_prometheus();
        assert!(
            text.contains("# HELP lb_ring_hops token hops\\nacross the \\\\ ring"),
            "{text}"
        );
        assert!(text.contains("# HELP lb_sweep_norm per-sweep L1 norm"));
        // Undescribed metrics get no HELP line.
        assert!(!text.contains("# HELP lb_calendar_depth"));
        // Every exposition line is still a single physical line.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("lb_"),
                "stray line {line:?}"
            );
        }
    }

    #[test]
    fn prometheus_export_uses_sanitized_names_and_summaries() {
        let reg = MetricsRegistry::new();
        reg.inc("ring.hops", 7);
        reg.set_gauge("calendar.depth", 3.0);
        reg.observe("sweep.norm", 2.0);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lb_ring_hops counter"));
        assert!(text.contains("lb_ring_hops 7"));
        assert!(text.contains("# TYPE lb_calendar_depth gauge"));
        assert!(text.contains("# TYPE lb_sweep_norm summary"));
        assert!(text.contains("lb_sweep_norm{quantile=\"0.95\"}"));
        assert!(text.contains("lb_sweep_norm_count 1"));
    }

    #[test]
    fn histogram_extreme_gauges_carry_type_and_help_metadata() {
        let reg = MetricsRegistry::new();
        reg.observe("sweep.norm", 2.0);
        reg.observe("sweep.norm", 8.0);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lb_sweep_norm_min gauge"), "{text}");
        assert!(text.contains("# HELP lb_sweep_norm_min "), "{text}");
        assert!(text.contains("# TYPE lb_sweep_norm_max gauge"));
        assert!(text.contains("# HELP lb_sweep_norm_max "));
        assert!(text.contains("lb_sweep_norm_min 2"));
        assert!(text.contains("lb_sweep_norm_max 8"));
    }

    #[test]
    fn non_finite_values_render_in_prometheus_spelling() {
        assert_eq!(fmt_prom_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_prom_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_prom_value(f64::NAN), "NaN");
        assert_eq!(fmt_prom_value(2.5), "2.5");

        let reg = MetricsRegistry::new();
        reg.set_gauge("weird.gauge", f64::INFINITY);
        reg.observe("weird.hist", f64::NAN);
        let text = reg.to_prometheus();
        assert!(text.contains("lb_weird_gauge +Inf"), "{text}");
        assert!(!text.contains(" inf"), "Rust float spelling leaked: {text}");
        validate_exposition(&text).expect("non-finite exposition must validate");
    }

    #[test]
    fn full_exposition_round_trips_through_the_validator() {
        let reg = MetricsRegistry::new();
        reg.inc("ring.hops", 7);
        reg.describe("ring.hops", "token hops\nacross the \\ ring");
        reg.set_gauge("calendar.depth", 3.25);
        reg.observe("sweep.norm", 2.0);
        reg.observe("sweep.norm", 1e-3);
        reg.describe("sweep.norm", "per-sweep L1 norm");
        validate_exposition(&reg.to_prometheus()).expect("exporter output must validate");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        let cases = [
            ("x 1\n", "no TYPE metadata"),
            ("# TYPE x widget\nx 1\n", "unknown type"),
            ("# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"),
            ("# TYPE x gauge\nx 1\n# TYPE y gauge\n# HELP x late\n", ""),
            (
                "# TYPE x summary\nx_sum 1\n# TYPE x_sum gauge\n",
                "after its samples",
            ),
            ("# TYPE x gauge\nx inf\n", "bad sample value"),
            ("# TYPE x gauge\nx nan\n", "bad sample value"),
            ("# TYPE 9bad gauge\n", "invalid metric name"),
            ("# TYPE x gauge\nx{9l=\"v\"} 1\n", "invalid label name"),
            ("# TYPE x gauge\nx{l=\"a\\qb\"} 1\n", "bad escape"),
            ("# TYPE x gauge\nx{l=\"open} 1\n", "unterminated"),
            ("# TYPE x gauge\nx{l=\"v\"}1\n", "missing value"),
            ("# TYPE x gauge\nx 1 2 3\n", "trailing data"),
            ("# random comment\n", "unrecognized comment"),
            ("# TYPE x summary\nx_bucket 1\n", "no TYPE metadata"),
        ];
        for (text, want) in cases {
            if want.is_empty() {
                continue; // structurally fine, listed for contrast
            }
            let err = validate_exposition(text).expect_err(text);
            assert!(err.contains(want), "{text:?}: got {err:?}, want {want:?}");
        }
        // Suffix series resolve to their declared parent.
        validate_exposition("# TYPE x summary\nx_sum 3.5\nx_count 2\n").unwrap();
        validate_exposition("# TYPE x histogram\nx_bucket{le=\"+Inf\"} 2\n").unwrap();
        validate_exposition("# TYPE x gauge\nx +Inf\nx NaN\n").unwrap();
    }
}
