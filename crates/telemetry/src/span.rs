//! Causal spans on top of the flat [`Collector`](crate::Collector)
//! event stream.
//!
//! A span is a named interval of work with an identity and an optional
//! parent, in the style of Dapper-family tracers. Opening a span emits
//! a [`SPAN_OPEN`] event and closing it emits a [`SPAN_CLOSE`] event;
//! both ride the existing collector pipeline, so span emission is
//! clock-free at the call site (the collector stamps `seq`/`t_us`) and
//! inherits every collector property — JSONL durability, tee fan-out,
//! `--verbose` mirroring, and the disabled-path cost model.
//!
//! Wire format (schema v2, validated by
//! [`parse_log`](crate::schema::parse_log)):
//!
//! ```text
//! {"seq":4,"t_us":120,"event":"span_open","fields":{"span":1,"name":"solver.solve","users":40}}
//! {"seq":5,"t_us":121,"event":"span_open","fields":{"span":2,"parent":1,"name":"solver.sweep","iter":1}}
//! {"seq":9,"t_us":250,"event":"span_close","fields":{"span":2,"name":"solver.sweep"}}
//! ```
//!
//! Durations are *reconstructed* from the collector-stamped `t_us` of
//! the open/close pair rather than measured at the emit site, which
//! keeps instrumented code free of clocks and therefore incapable of
//! perturbing deterministic replay. When collection is off,
//! [`Span::root`] returns `None` and no span machinery runs at all —
//! the disabled path stays one pointer check, exactly like flat events.
//!
//! Span ids are allocated from a process-wide counter, so they are
//! unique within any log a process writes but are not stable across
//! runs; analysis must treat them as opaque.

use crate::event::{Collector, Field, FieldValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Event name used for span openings.
pub const SPAN_OPEN: &str = "span_open";

/// Event name used for span closings.
pub const SPAN_CLOSE: &str = "span_close";

/// Process-unique identity of one span. Ids start at 1; 0 never
/// denotes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed))
}

/// A live span: emitted `span_open` on creation, emits `span_close`
/// when closed (explicitly via [`Span::close`]/[`Span::close_with`] or
/// implicitly on drop). Not `Clone` — each span closes exactly once.
pub struct Span {
    collector: Arc<dyn Collector>,
    id: SpanId,
    name: &'static str,
    closed: bool,
}

/// A cheap, cloneable reference to an open span, for creating children
/// from code that cannot borrow the owning [`Span`] (e.g. a DES engine
/// parented under the simulation that drives it). Creating a child
/// through a handle after the parent closed is permitted — the schema
/// only requires that the parent was opened earlier in the log.
#[derive(Clone)]
pub struct SpanHandle {
    collector: Arc<dyn Collector>,
    id: SpanId,
}

impl Span {
    /// Opens a top-level span if collection is on, resolving the
    /// optional collector exactly like
    /// [`enabled`](crate::event::enabled). Returns `None` (and does no
    /// work) when the collector is absent or disabled, so instrumented
    /// code pays one pointer check on the collection-off path.
    pub fn root(
        collector: Option<&Arc<dyn Collector>>,
        name: &'static str,
        fields: &[Field],
    ) -> Option<Span> {
        match collector {
            Some(c) if c.enabled() => Some(Self::open(Arc::clone(c), name, None, fields)),
            _ => None,
        }
    }

    /// Opens a child span of `self`.
    pub fn child(&self, name: &'static str, fields: &[Field]) -> Span {
        Self::open(Arc::clone(&self.collector), name, Some(self.id), fields)
    }

    fn open(
        collector: Arc<dyn Collector>,
        name: &'static str,
        parent: Option<SpanId>,
        fields: &[Field],
    ) -> Span {
        let id = next_span_id();
        let mut payload: Vec<Field> = Vec::with_capacity(fields.len() + 3);
        payload.push(("span", FieldValue::U64(id.0)));
        if let Some(p) = parent {
            payload.push(("parent", FieldValue::U64(p.0)));
        }
        payload.push(("name", FieldValue::from(name)));
        payload.extend_from_slice(fields);
        collector.emit(SPAN_OPEN, &payload);
        Span {
            collector,
            id,
            name,
            closed: false,
        }
    }

    /// This span's identity.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// A cloneable handle for creating children elsewhere.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            collector: Arc::clone(&self.collector),
            id: self.id,
        }
    }

    /// Closes the span now.
    pub fn close(self) {
        drop(self);
    }

    /// Closes the span now, attaching extra fields to the
    /// `span_close` event (e.g. outcome counters).
    pub fn close_with(mut self, fields: &[Field]) {
        self.emit_close(fields);
    }

    fn emit_close(&mut self, fields: &[Field]) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut payload: Vec<Field> = Vec::with_capacity(fields.len() + 2);
        payload.push(("span", FieldValue::U64(self.id.0)));
        payload.push(("name", FieldValue::from(self.name)));
        payload.extend_from_slice(fields);
        self.collector.emit(SPAN_CLOSE, &payload);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_close(&[]);
    }
}

impl SpanHandle {
    /// The referenced span's identity.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Opens a child span of the referenced span.
    pub fn child(&self, name: &'static str, fields: &[Field]) -> Span {
        Span::open(Arc::clone(&self.collector), name, Some(self.id), fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectors::MemoryCollector;

    fn field_u64(fields: &[Field], key: &str) -> Option<u64> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                FieldValue::U64(n) => *n,
                other => panic!("field {key} is not u64: {other:?}"),
            })
    }

    #[test]
    fn root_is_none_when_collection_is_off() {
        assert!(Span::root(None, "x", &[]).is_none());
        struct Off;
        impl Collector for Off {
            fn enabled(&self) -> bool {
                false
            }
            fn emit(&self, _: &'static str, _: &[Field]) {
                panic!("disabled collector must never receive span events");
            }
        }
        let off: Arc<dyn Collector> = Arc::new(Off);
        assert!(Span::root(Some(&off), "x", &[]).is_none());
    }

    #[test]
    fn open_close_carry_identity_parent_and_extras() {
        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        let root = Span::root(Some(&collector), "outer", &[("k", 7u64.into())]).unwrap();
        let child = root.child("inner", &[]);
        let grandchild = child.handle().child("leaf", &[]);
        grandchild.close_with(&[("items", 3u64.into())]);
        child.close();
        root.close();

        let events = mem.events();
        assert_eq!(events.len(), 6);
        let (open_names, close_names): (Vec<_>, Vec<_>) = (
            events.iter().filter(|(n, _)| *n == SPAN_OPEN).collect(),
            events.iter().filter(|(n, _)| *n == SPAN_CLOSE).collect(),
        );
        assert_eq!(open_names.len(), 3);
        assert_eq!(close_names.len(), 3);

        let root_id = field_u64(&events[0].1, "span").unwrap();
        assert!(
            field_u64(&events[0].1, "parent").is_none(),
            "root has no parent"
        );
        assert_eq!(field_u64(&events[0].1, "k"), Some(7));

        let child_id = field_u64(&events[1].1, "span").unwrap();
        assert_eq!(field_u64(&events[1].1, "parent"), Some(root_id));
        let leaf_id = field_u64(&events[2].1, "span").unwrap();
        assert_eq!(field_u64(&events[2].1, "parent"), Some(child_id));

        // Closes arrive leaf-first and reference the right spans.
        assert_eq!(field_u64(&events[3].1, "span"), Some(leaf_id));
        assert_eq!(field_u64(&events[3].1, "items"), Some(3));
        assert_eq!(field_u64(&events[4].1, "span"), Some(child_id));
        assert_eq!(field_u64(&events[5].1, "span"), Some(root_id));
    }

    #[test]
    fn drop_closes_exactly_once() {
        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        {
            let _span = Span::root(Some(&collector), "scoped", &[]).unwrap();
        }
        assert_eq!(mem.count(SPAN_OPEN), 1);
        assert_eq!(mem.count(SPAN_CLOSE), 1);
    }

    #[test]
    fn ids_are_unique_across_spans() {
        let mem = Arc::new(MemoryCollector::default());
        let collector: Arc<dyn Collector> = mem.clone();
        let a = Span::root(Some(&collector), "a", &[]).unwrap();
        let b = Span::root(Some(&collector), "b", &[]).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.handle().id(), a.id());
    }
}
