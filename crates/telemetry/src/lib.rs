//! `lb-telemetry`: a zero-external-dependency structured observability
//! layer, in the spirit of the `compat/` shims.
//!
//! The crate has three parts:
//!
//! - [`Collector`]: the event/span sink trait the runtime crates are
//!   instrumented against. Hot paths hold an
//!   `Option<Arc<dyn Collector>>` that defaults to `None`, so the
//!   disabled path is a single pointer check (budget: <1% overhead on
//!   the solver benchmarks, measured by the `bench` subcommand).
//!   Implementations: [`NullCollector`] (enabled-but-discarding, for
//!   overhead measurement), [`JsonlCollector`] (append-only versioned
//!   event log), [`StderrCollector`] (human-readable CLI progress),
//!   [`TeeCollector`] (fan-out), [`MemoryCollector`] (tests).
//! - [`schema`]: the versioned JSONL event-log format — a header line
//!   `{"schema":"lb-telemetry","version":2}` followed by one event
//!   object per line — plus a parser/validator ([`parse_log`]) built on
//!   the minimal JSON codec in [`json`].
//! - [`span`]: causal spans ([`Span`], [`SpanId`]) layered on the flat
//!   event stream as `span_open`/`span_close` events, giving logs a
//!   reconstructable parent/child tree for critical-path analysis.
//! - [`MetricsRegistry`]: counters, gauges, and log-linear histograms
//!   with p50/p95/p99, exportable as JSON and Prometheus text format
//!   (strictly checkable via [`validate_exposition`]).
//! - [`stream`]: online aggregation — [`StreamAggregator`] folds the
//!   event stream into sliding windows and EWMA gauges over a
//!   virtual-time watermark, with no full-log buffering.
//! - [`slo`]: declarative [`SloSpec`] objectives evaluated by the
//!   multi-window burn-rate [`SloEngine`], emitting deterministic
//!   `alert.fire`/`alert.clear` events.
//! - [`serve`]: [`LiveServer`], a zero-dep `TcpListener` HTTP endpoint
//!   exposing `/metrics`, `/healthz`, and `/trace/recent` from live
//!   state while a scenario runs.
//! - [`sample`]: [`SamplingCollector`], deterministic seed-keyed head
//!   sampling with per-event-type rate caps and exact reweighting via
//!   `sample.digest` aggregates, for web-scale traces with bounded
//!   size.
//! - [`account`]: [`Account`], per-subsystem relaxed-atomic resource
//!   counters snapshotted into `account.*` events at span close and
//!   exportable through the metrics registry.
//!
//! Instrumentation never perturbs results: nothing ever flows back
//! from a collector into the computation, and emit sites are
//! clock-free (collectors stamp `seq`/`t_us`). The experiment CSVs are
//! byte-identical with collection on or off (property-tested in
//! `lb-sim` and asserted end-to-end in `lb-experiments`).

pub mod account;
pub mod collectors;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sample;
pub mod schema;
pub mod serve;
pub mod slo;
pub mod span;
pub mod stream;

pub use account::Account;
pub use collectors::{JsonlCollector, MemoryCollector, StderrCollector, TeeCollector};
pub use event::{enabled, Collector, Field, FieldValue, NullCollector, SpanTimer};
pub use json::Json;
pub use metrics::{validate_exposition, HistogramSnapshot, MetricsRegistry};
pub use sample::{SamplingCollector, SamplingConfig};
pub use schema::{parse_log, EventLog, LogEvent, LogReader, SCHEMA_NAME, SCHEMA_VERSION};
pub use serve::LiveServer;
pub use slo::{AlertState, Objective, SloEngine, SloSpec, SloVerdict};
pub use span::{Span, SpanHandle, SpanId, SPAN_CLOSE, SPAN_OPEN};
pub use stream::{EwmaSpec, StreamAggregator, WindowSpec, WindowStats};
