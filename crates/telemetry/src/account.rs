//! Per-subsystem resource accounting.
//!
//! An [`Account`] is a small set of named relaxed-atomic counters
//! owned by one run of one subsystem (a solve, a shard, a network
//! episode) and snapshotted into a single `account.*` event — every
//! field an integer — at span close. Accounts are per-run objects,
//! never process globals, so the snapshot an account emits depends
//! only on the run that owned it: traces stay bit-identical no matter
//! what else the process is doing.
//!
//! Relaxed ordering is deliberate: counters are statistics, not
//! synchronization. Parallel workers (e.g. the Jacobi reply pass)
//! bump the same account concurrently for the price of an uncontended
//! atomic add; the final totals are exact because every increment
//! lands before the owning scope joins its workers and snapshots.
//!
//! Hot single-threaded paths (the RNG draw funnel, the DES event
//! loop) keep plain `u64` counters instead and report totals through
//! [`Account::add`] (or directly as event fields) at snapshot points;
//! the atomic form is for counters that genuinely cross threads.

use crate::event::{Collector, Field, FieldValue};
use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named set of relaxed-atomic counters snapshotting into one
/// `account.*` event. The key set is fixed at construction so the
/// snapshot field order is deterministic.
#[derive(Debug)]
pub struct Account {
    event: &'static str,
    slots: Vec<(&'static str, AtomicU64)>,
}

impl Account {
    /// An account emitting `event` (an `account.*` name) with the
    /// given counter keys, all starting at zero. Keys keep their
    /// construction order in every snapshot.
    pub fn new(event: &'static str, keys: &[&'static str]) -> Self {
        Self {
            event,
            slots: keys.iter().map(|&k| (k, AtomicU64::new(0))).collect(),
        }
    }

    /// The `account.*` event name this account snapshots into.
    pub fn event(&self) -> &'static str {
        self.event
    }

    /// Adds `n` to the counter `key`.
    ///
    /// # Panics
    ///
    /// If `key` was not declared at construction — counter sets are
    /// closed so snapshots are structurally stable.
    pub fn add(&self, key: &str, n: u64) {
        self.slot(key).fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter `key` by one.
    ///
    /// # Panics
    ///
    /// If `key` was not declared at construction.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of the counter `key`.
    ///
    /// # Panics
    ///
    /// If `key` was not declared at construction.
    pub fn get(&self, key: &str) -> u64 {
        self.slot(key).load(Ordering::Relaxed)
    }

    fn slot(&self, key: &str) -> &AtomicU64 {
        self.slots
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("account {}: undeclared counter {key:?}", self.event))
    }

    /// Counter values in declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.slots
            .iter()
            .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot rendered as event fields.
    pub fn fields(&self) -> Vec<Field> {
        self.slots
            .iter()
            .map(|(k, v)| (*k, FieldValue::U64(v.load(Ordering::Relaxed))))
            .collect()
    }

    /// Emits the snapshot as one `account.*` event through `collector`.
    pub fn emit_to(&self, collector: &dyn Collector) {
        collector.emit(self.event, &self.fields());
    }

    /// Folds the snapshot into a metrics registry as counters named
    /// `<event>.<key>` (e.g. `account.net.bytes`), for Prometheus
    /// export.
    pub fn fold_into(&self, registry: &MetricsRegistry) {
        for (key, value) in self.snapshot() {
            registry.inc(&format!("{}.{key}", self.event), value);
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for (_, v) in &self.slots {
            v.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectors::MemoryCollector;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot_in_declaration_order() {
        let acct = Account::new("account.solver", &["best_replies", "water_fills"]);
        acct.incr("best_replies");
        acct.add("water_fills", 3);
        acct.incr("best_replies");
        assert_eq!(acct.get("best_replies"), 2);
        assert_eq!(
            acct.snapshot(),
            vec![("best_replies", 2), ("water_fills", 3)]
        );
        acct.reset();
        assert_eq!(
            acct.snapshot(),
            vec![("best_replies", 0), ("water_fills", 0)]
        );
    }

    #[test]
    fn concurrent_increments_are_exact_after_join() {
        let acct = Arc::new(Account::new("account.test", &["hits"]));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let acct = acct.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        acct.incr("hits");
                    }
                });
            }
        });
        assert_eq!(acct.get("hits"), 80_000);
    }

    #[test]
    fn emit_produces_a_schema_valid_account_event() {
        let mem = Arc::new(MemoryCollector::default());
        let acct = Account::new("account.des", &["scheduled", "executed"]);
        acct.add("scheduled", 7);
        acct.add("executed", 7);
        acct.emit_to(mem.as_ref());
        let events = mem.events();
        assert_eq!(events.len(), 1);
        let (name, fields) = &events[0];
        assert_eq!(*name, "account.des");
        assert_eq!(fields[0], ("scheduled", FieldValue::U64(7)));
        assert_eq!(fields[1], ("executed", FieldValue::U64(7)));
    }

    #[test]
    fn fold_into_exports_prometheus_counters() {
        let registry = MetricsRegistry::new();
        let acct = Account::new("account.net", &["sent", "bytes"]);
        acct.add("sent", 4);
        acct.add("bytes", 256);
        acct.fold_into(&registry);
        let text = registry.to_prometheus();
        assert!(text.contains("lb_account_net_sent 4"), "{text}");
        assert!(text.contains("lb_account_net_bytes 256"), "{text}");
    }

    #[test]
    #[should_panic(expected = "undeclared counter")]
    fn undeclared_counters_panic() {
        Account::new("account.x", &["a"]).incr("b");
    }
}
