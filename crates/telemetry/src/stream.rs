//! Online (streaming) aggregation of the event stream into sliding
//! windows and EWMA gauges — the live half of the observability stack.
//!
//! The batch pipeline (`experiments trace` → [`crate::parse_log`] →
//! `experiments analyze`) buffers the whole log and analyzes it after
//! the run exits. A long-running serving process cannot do that: it
//! needs "what is the certified gap / goodput / staleness *right now*"
//! answered from bounded state. [`StreamAggregator`] is a [`Collector`]
//! that consumes each event exactly once, updating:
//!
//! * per-event-name **counts** (total events seen, ever);
//! * **sliding windows** ([`WindowSpec`]) — sum/count/min/max/mean of a
//!   numeric field over the trailing `width_us` of *virtual* time,
//!   implemented as a ring of fixed-width buckets (memory is
//!   `O(bins)`, independent of event rate);
//! * **EWMA gauges** ([`EwmaSpec`]) — exponentially weighted moving
//!   averages with a half-life in virtual µs (the SNIPPETS §1 load
//!   smoothing idiom, generalized to any field).
//!
//! ## The virtual-time watermark
//!
//! The DES/async runtimes advance a *virtual* clock; collectors stamp
//! *wall* time. Mixing the two silently corrupts every window, so the
//! aggregator is driven **exclusively** by the `t_us` payload field
//! that every `net.*` / `async.*` / `sim.*` event carries (virtual µs).
//! The largest such value seen so far is the **watermark**; windows are
//! evaluated at the watermark, never at wall time. Events without a
//! `t_us` field are counted but advance nothing and join no window.
//! Late events (a `t_us` behind the watermark) still land in their own
//! bucket when it has not slid out yet; anything older is dropped and
//! counted in [`StreamAggregator::late_dropped`].
//!
//! Because state depends only on the event payloads and their order —
//! never on wall clocks or allocation addresses — a deterministic event
//! stream yields a bit-identical aggregator state (property-tested in
//! `tests/stream_prop.rs`), and attaching the aggregator can never
//! perturb the computation it observes.

use crate::event::{Collector, Field, FieldValue};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of ring buckets per window: the evaluated span is
/// `width_us`, resolved to `width_us / BINS` granularity.
const BINS: u64 = 16;

/// Declares a sliding-window aggregate over one numeric field of one
/// event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSpec {
    /// Event name to match (e.g. `async.staleness`).
    pub event: String,
    /// Field key whose numeric value is aggregated (e.g. `age_us`).
    pub field: String,
    /// Window width in virtual µs.
    pub width_us: u64,
}

impl WindowSpec {
    /// A window over `event.field` spanning the trailing `width_us`.
    pub fn new(event: &str, field: &str, width_us: u64) -> Self {
        assert!(width_us >= BINS, "window narrower than its bucket count");
        Self {
            event: event.to_string(),
            field: field.to_string(),
            width_us,
        }
    }
}

/// Declares an EWMA gauge over one numeric field of one event name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EwmaSpec {
    /// Event name to match.
    pub event: String,
    /// Field key whose numeric value is smoothed.
    pub field: String,
    /// Half-life in virtual µs: an observation this old carries half
    /// the weight of one arriving now.
    pub half_life_us: u64,
}

impl EwmaSpec {
    /// An EWMA of `event.field` with the given half-life.
    pub fn new(event: &str, field: &str, half_life_us: u64) -> Self {
        assert!(half_life_us > 0, "zero half-life");
        Self {
            event: event.to_string(),
            field: field.to_string(),
            half_life_us,
        }
    }
}

/// Point-in-time summary of one sliding window, evaluated at the
/// watermark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of the observed field values.
    pub sum: f64,
    /// Smallest observation (`NaN` when empty).
    pub min: f64,
    /// Largest observation (`NaN` when empty).
    pub max: f64,
}

impl WindowStats {
    /// Mean of the window (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }
}

/// One ring bucket: aggregates of everything that landed in its span.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    start_us: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Bucket {
    fn new(start_us: u64) -> Self {
        Self {
            start_us,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }
}

#[derive(Debug)]
struct WindowState {
    spec: WindowSpec,
    bucket_us: u64,
    /// Buckets in ascending `start_us` order; at most `BINS + 1` live
    /// at a time (the evaluated span plus the partially filled head).
    buckets: VecDeque<Bucket>,
}

impl WindowState {
    fn new(spec: WindowSpec) -> Self {
        let bucket_us = (spec.width_us / BINS).max(1);
        Self {
            spec,
            bucket_us,
            buckets: VecDeque::new(),
        }
    }

    fn evict(&mut self, watermark: u64) {
        let horizon = watermark.saturating_sub(self.spec.width_us);
        while self
            .buckets
            .front()
            .is_some_and(|b| b.start_us + self.bucket_us <= horizon)
        {
            self.buckets.pop_front();
        }
    }

    /// Whether the observation landed (false = older than the window).
    fn observe(&mut self, t_us: u64, v: f64, watermark: u64) -> bool {
        self.evict(watermark);
        let start = (t_us / self.bucket_us) * self.bucket_us;
        if start + self.bucket_us <= watermark.saturating_sub(self.spec.width_us) {
            return false;
        }
        // Find or create the bucket, keeping the deque sorted. Late
        // events land near the back, so a reverse scan is short.
        let pos = self.buckets.iter().rposition(|b| b.start_us <= start);
        match pos {
            Some(i) if self.buckets[i].start_us == start => self.buckets[i].observe(v),
            Some(i) => {
                let mut b = Bucket::new(start);
                b.observe(v);
                self.buckets.insert(i + 1, b);
            }
            None => {
                let mut b = Bucket::new(start);
                b.observe(v);
                self.buckets.push_front(b);
            }
        }
        true
    }

    fn stats(&self, watermark: u64) -> WindowStats {
        let horizon = watermark.saturating_sub(self.spec.width_us);
        let mut s = WindowStats {
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        };
        for b in &self.buckets {
            if b.start_us + self.bucket_us <= horizon || b.count == 0 {
                continue;
            }
            s.count += b.count;
            s.sum += b.sum;
            if s.min.is_nan() || b.min < s.min {
                s.min = b.min;
            }
            if s.max.is_nan() || b.max > s.max {
                s.max = b.max;
            }
        }
        s
    }
}

#[derive(Debug)]
struct EwmaState {
    spec: EwmaSpec,
    value: f64,
    last_us: u64,
    seeded: bool,
}

impl EwmaState {
    fn observe(&mut self, t_us: u64, v: f64) {
        if !self.seeded {
            self.value = v;
            self.last_us = t_us;
            self.seeded = true;
            return;
        }
        // Time-aware EWMA: weight decays by 2^(-Δt / half_life), so
        // irregular sampling doesn't distort the average. Out-of-order
        // observations use Δt = 0 (full carry-over of the old value is
        // wrong; treating them as "now" keeps the update commutative
        // enough for bounded reordering and stays deterministic).
        #[allow(clippy::cast_precision_loss)]
        let dt = t_us.saturating_sub(self.last_us) as f64;
        #[allow(clippy::cast_precision_loss)]
        let alpha = 1.0 - (-std::f64::consts::LN_2 * dt / self.spec.half_life_us as f64).exp();
        // dt = 0 gives alpha = 0; still blend a minimum share so bursts
        // at one timestamp are not invisible.
        let alpha = alpha.max(0.1);
        self.value += alpha * (v - self.value);
        self.last_us = self.last_us.max(t_us);
    }
}

#[derive(Debug, Default)]
struct Inner {
    watermark_us: u64,
    counts: Vec<(String, u64)>,
    windows: Vec<WindowState>,
    ewmas: Vec<EwmaState>,
    late_dropped: u64,
}

/// The streaming aggregator. See the module docs for semantics.
///
/// Attach it directly ([`AsyncNash::collector`]-style call sites take an
/// `Arc<dyn Collector>`) or behind a
/// [`TeeCollector`](crate::TeeCollector) next to a durable JSONL sink.
///
/// [`AsyncNash::collector`]: ../../lb_distributed/struct.AsyncNash.html
#[derive(Debug, Default)]
pub struct StreamAggregator {
    inner: Mutex<Inner>,
}

fn numeric(v: &FieldValue) -> Option<f64> {
    #[allow(clippy::cast_precision_loss)]
    match v {
        FieldValue::U64(n) => Some(*n as f64),
        FieldValue::I64(n) => Some(*n as f64),
        FieldValue::F64(x) => Some(*x),
        FieldValue::Bool(_) | FieldValue::Str(_) => None,
    }
}

fn virtual_time(fields: &[Field]) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == "t_us")
        .and_then(|(_, v)| {
            if let FieldValue::U64(t) = v {
                Some(*t)
            } else {
                None
            }
        })
}

impl StreamAggregator {
    /// An aggregator with no windows or gauges (counts only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sliding window.
    pub fn window(self, spec: WindowSpec) -> Self {
        self.inner
            .lock()
            .expect("stream lock")
            .windows
            .push(WindowState::new(spec));
        self
    }

    /// Adds an EWMA gauge.
    pub fn ewma(self, spec: EwmaSpec) -> Self {
        self.inner
            .lock()
            .expect("stream lock")
            .ewmas
            .push(EwmaState {
                spec,
                value: f64::NAN,
                last_us: 0,
                seeded: false,
            });
        self
    }

    /// The virtual-time watermark: the largest `t_us` payload field seen.
    pub fn watermark_us(&self) -> u64 {
        self.inner.lock().expect("stream lock").watermark_us
    }

    /// Total events seen with this name (windowed or not).
    pub fn count(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("stream lock")
            .counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    }

    /// Observations too old for their window when they arrived.
    pub fn late_dropped(&self) -> u64 {
        self.inner.lock().expect("stream lock").late_dropped
    }

    /// Current stats of the first window on `event.field`, evaluated
    /// at the watermark. `None` when no such window was declared.
    pub fn window_stats(&self, event: &str, field: &str) -> Option<WindowStats> {
        self.window_stats_at(event, field, 0)
    }

    /// Stats of the `nth` (0-based, declaration order) window matching
    /// `event.field` — several windows of different widths may observe
    /// the same signal (e.g. an SLO's short and long windows).
    pub fn window_stats_at(&self, event: &str, field: &str, nth: usize) -> Option<WindowStats> {
        let mut inner = self.inner.lock().expect("stream lock");
        let watermark = inner.watermark_us;
        inner
            .windows
            .iter_mut()
            .filter(|w| w.spec.event == event && w.spec.field == field)
            .nth(nth)
            .map(|w| {
                w.evict(watermark);
                w.stats(watermark)
            })
    }

    /// Current value of the EWMA gauge on `event.field` (`NaN` before
    /// the first observation). `None` when no such gauge was declared.
    pub fn ewma_value(&self, event: &str, field: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("stream lock")
            .ewmas
            .iter()
            .find(|e| e.spec.event == event && e.spec.field == field)
            .map(|e| e.value)
    }
}

impl Collector for StreamAggregator {
    fn emit(&self, name: &'static str, fields: &[Field]) {
        let mut inner = self.inner.lock().expect("stream lock");
        match inner.counts.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c += 1,
            None => inner.counts.push((name.to_string(), 1)),
        }
        let Some(t_us) = virtual_time(fields) else {
            return; // wall-clock-only event: counted, never windowed
        };
        if t_us > inner.watermark_us {
            inner.watermark_us = t_us;
        }
        let watermark = inner.watermark_us;
        let Inner {
            windows,
            ewmas,
            late_dropped,
            ..
        } = &mut *inner;
        for w in windows.iter_mut() {
            if w.spec.event != name {
                continue;
            }
            let Some(v) = fields
                .iter()
                .find(|(k, _)| *k == w.spec.field)
                .and_then(|(_, v)| numeric(v))
            else {
                continue;
            };
            if !w.observe(t_us, v, watermark) {
                *late_dropped += 1;
            }
        }
        for e in ewmas.iter_mut() {
            if e.spec.event != name {
                continue;
            }
            if let Some(v) = fields
                .iter()
                .find(|(k, _)| *k == e.spec.field)
                .and_then(|(_, v)| numeric(v))
            {
                e.observe(t_us, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg() -> StreamAggregator {
        StreamAggregator::new()
            .window(WindowSpec::new("m", "v", 1_000))
            .ewma(EwmaSpec::new("m", "v", 500))
    }

    fn emit(a: &StreamAggregator, t: u64, v: f64) {
        a.emit("m", &[("t_us", t.into()), ("v", v.into())]);
    }

    #[test]
    fn window_slides_with_the_watermark() {
        let a = agg();
        emit(&a, 100, 1.0);
        emit(&a, 500, 3.0);
        let s = a.window_stats("m", "v").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4.0);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert_eq!(s.mean(), 2.0);

        // Advance past the first observation's bucket: it slides out.
        emit(&a, 1_400, 5.0);
        let s = a.window_stats("m", "v").unwrap();
        assert_eq!(s.count, 2, "t=100 must be evicted at watermark 1400");
        assert_eq!(s.sum, 8.0);
    }

    #[test]
    fn events_without_virtual_time_count_but_do_not_advance() {
        let a = agg();
        a.emit("m", &[("v", 9.0.into())]);
        assert_eq!(a.count("m"), 1);
        assert_eq!(a.watermark_us(), 0);
        assert_eq!(a.window_stats("m", "v").unwrap().count, 0);
    }

    #[test]
    fn late_events_join_live_buckets_or_are_dropped() {
        let a = agg();
        emit(&a, 900, 1.0);
        emit(&a, 1_000, 2.0); // watermark 1000; horizon 0
        emit(&a, 950, 3.0); // late but in-window
        assert_eq!(a.window_stats("m", "v").unwrap().count, 3);
        assert_eq!(a.late_dropped(), 0);

        emit(&a, 5_000, 4.0); // watermark 5000; horizon 4000
        emit(&a, 100, 9.0); // hopelessly late
        assert_eq!(a.late_dropped(), 1);
        assert_eq!(a.window_stats("m", "v").unwrap().count, 1);
    }

    #[test]
    fn ewma_converges_toward_recent_values() {
        let a = agg();
        emit(&a, 0, 10.0);
        assert_eq!(a.ewma_value("m", "v"), Some(10.0));
        for k in 1..=20 {
            emit(&a, k * 500, 0.0);
        }
        let v = a.ewma_value("m", "v").unwrap();
        assert!(v < 0.01, "EWMA must decay toward recent 0.0, got {v}");
        assert!(v >= 0.0);
    }

    #[test]
    fn empty_window_mean_is_nan_and_unknown_specs_are_none() {
        let a = agg();
        assert!(a.window_stats("m", "v").unwrap().mean().is_nan());
        assert!(a.window_stats("other", "v").is_none());
        assert!(a.ewma_value("m", "absent").is_none());
        assert!(a.ewma_value("m", "v").unwrap().is_nan());
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            let a = agg();
            for k in 0..200u64 {
                #[allow(clippy::cast_precision_loss)]
                emit(&a, k * 37, (k % 13) as f64 * 0.5);
            }
            let s = a.window_stats("m", "v").unwrap();
            (
                s.count,
                s.sum.to_bits(),
                a.ewma_value("m", "v").unwrap().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }
}
