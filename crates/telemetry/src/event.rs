//! The [`Collector`] trait and the typed event payloads it receives.

use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

/// A single typed key/value pair attached to an event. Keys are static
/// so emit sites never allocate for them.
pub type Field = (&'static str, FieldValue);

/// The value side of a [`Field`]. Numeric variants are kept distinct so
/// the JSONL encoding round-trips types exactly (a `U64` never comes
/// back as a float).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like values (iterations, rounds, indices).
    U64(u64),
    /// Signed values (deltas that may be negative).
    I64(i64),
    /// Measurements (norms, rates, timings in fractional units).
    F64(f64),
    /// Flags (converged, degraded).
    Bool(bool),
    /// Labels (scheme names, event kinds). `Cow` keeps static label
    /// emission allocation-free.
    Str(Cow<'static, str>),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Cow::Owned(v))
    }
}

/// An event/span sink. Instrumented code holds an
/// `Option<Arc<dyn Collector>>` (default `None`) and guards every emit
/// site with [`enabled`], so a disabled collector costs one pointer
/// check and an enabled-but-null one costs a virtual call.
///
/// Implementations stamp their own timestamps and sequence numbers;
/// emit sites stay clock-free so instrumentation cannot perturb
/// deterministic replay.
pub trait Collector: Send + Sync {
    /// Whether events should be assembled at all. Call sites that build
    /// non-trivial payloads (e.g. water-fill prefix statistics) check
    /// this first and skip the work when it returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one named event with its typed fields.
    fn emit(&self, name: &'static str, fields: &[Field]);

    /// Flushes any buffered output (a no-op for most collectors).
    fn flush(&self) {}
}

/// Resolves an optional collector handle to an active `&dyn Collector`,
/// or `None` when collection is off. This is the single disabled-path
/// check every instrumented hot loop performs.
#[inline]
pub fn enabled(collector: Option<&Arc<dyn Collector>>) -> Option<&dyn Collector> {
    match collector {
        Some(c) if c.enabled() => Some(&**c),
        _ => None,
    }
}

/// A collector that accepts events and discards them. Used to measure
/// the cost of the emit path itself (event assembly + virtual call)
/// separately from serialization.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn emit(&self, _name: &'static str, _fields: &[Field]) {}
}

/// A scoped timer: measures wall time from construction and emits one
/// event carrying `elapsed_us` (plus any extra fields) when dropped or
/// finished. The span event is emitted *after* the timed work, so spans
/// are as replay-safe as plain events.
pub struct SpanTimer<'a> {
    collector: &'a dyn Collector,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl<'a> SpanTimer<'a> {
    /// Starts a span that will emit `name` when it ends.
    pub fn new(collector: &'a dyn Collector, name: &'static str) -> Self {
        SpanTimer {
            collector,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Ends the span now, attaching `extra` fields after `elapsed_us`.
    pub fn finish(mut self, extra: &[Field]) {
        self.emit(extra);
    }

    fn emit(&mut self, extra: &[Field]) {
        if self.done {
            return;
        }
        self.done = true;
        let elapsed = self.start.elapsed().as_micros() as u64;
        let mut fields: Vec<Field> = Vec::with_capacity(extra.len() + 1);
        fields.push(("elapsed_us", FieldValue::U64(elapsed)));
        fields.extend_from_slice(extra);
        self.collector.emit(self.name, &fields);
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.emit(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectors::MemoryCollector;

    #[test]
    fn enabled_resolves_none_and_disabled_to_none() {
        assert!(enabled(None).is_none());
        let on: Arc<dyn Collector> = Arc::new(NullCollector);
        assert!(enabled(Some(&on)).is_some());

        struct Off;
        impl Collector for Off {
            fn enabled(&self) -> bool {
                false
            }
            fn emit(&self, _: &'static str, _: &[Field]) {
                panic!("disabled collector must never receive events");
            }
        }
        let off: Arc<dyn Collector> = Arc::new(Off);
        assert!(enabled(Some(&off)).is_none());
    }

    #[test]
    fn span_timer_emits_once_with_elapsed_and_extras() {
        let mem = MemoryCollector::default();
        {
            let span = SpanTimer::new(&mem, "unit.span");
            span.finish(&[("tag", FieldValue::from("done"))]);
        }
        let events = mem.events();
        assert_eq!(events.len(), 1);
        let (name, fields) = &events[0];
        assert_eq!(*name, "unit.span");
        assert_eq!(fields[0].0, "elapsed_us");
        assert!(matches!(fields[0].1, FieldValue::U64(_)));
        assert_eq!(fields[1], ("tag", FieldValue::from("done")));
    }

    #[test]
    fn span_timer_emits_on_drop() {
        let mem = MemoryCollector::default();
        {
            let _span = SpanTimer::new(&mem, "unit.drop");
        }
        assert_eq!(mem.events().len(), 1);
    }
}
