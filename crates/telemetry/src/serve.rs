//! A zero-dependency HTTP endpoint exposing the live observability
//! state — the first runnable slice of the serving daemon.
//!
//! [`LiveServer`] binds a `std::net::TcpListener` (port 0 picks an
//! ephemeral port; [`LiveServer::addr`] reports the bound address) and
//! serves three read-only routes from a background thread:
//!
//! | route           | content                                           |
//! |-----------------|---------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the live registry   |
//! | `/healthz`      | JSON verdict per [`SloSpec`](crate::slo::SloSpec) |
//! | `/trace/recent` | last-K events from a ring [`MemoryCollector`]     |
//!
//! The server only *reads* shared state (`Arc`s of the registry, SLO
//! engine, and event ring); it feeds nothing back into the computation
//! it observes, preserving the crate's on-vs-off byte-identity
//! invariant. HTTP support is deliberately minimal — `GET`, one
//! request per connection, `Connection: close` — just enough for
//! `curl` and a Prometheus scraper.

use crate::collectors::MemoryCollector;
use crate::event::FieldValue;
use crate::json::{escape_str, fmt_f64};
use crate::metrics::MetricsRegistry;
use crate::slo::{AlertState, SloEngine};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared state the routes render from.
struct Routes {
    registry: Arc<MetricsRegistry>,
    engine: Arc<SloEngine>,
    ring: Arc<MemoryCollector>,
}

/// The live observability HTTP server. Dropping it (or calling
/// [`LiveServer::shutdown`]) stops the accept loop and joins the
/// serving thread.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `127.0.0.1:port` (0 = ephemeral) and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (e.g. the port is taken).
    pub fn start(
        port: u16,
        registry: Arc<MetricsRegistry>,
        engine: Arc<SloEngine>,
        ring: Arc<MemoryCollector>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let routes = Routes {
            registry,
            engine,
            ring,
        };
        let handle = std::thread::Builder::new()
            .name("lb-live-serve".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &routes),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handles one connection: read the request line, route, respond.
/// Errors (slow clients, disconnects) drop the connection; the server
/// must never panic on malformed input.
fn serve_one(mut stream: TcpStream, routes: &Routes) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut len = 0;
    // Read until the request line is complete (first CRLF); ignore the
    // rest of the headers — all routes are parameterless GETs.
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let mut parts = request.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                routes.registry.to_prometheus(),
            ),
            "/healthz" => (
                "200 OK",
                "application/json; charset=utf-8",
                healthz_json(&routes.engine),
            ),
            "/trace/recent" => (
                "200 OK",
                "application/json; charset=utf-8",
                recent_json(&routes.ring),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "routes: /metrics /healthz /trace/recent\n".to_string(),
            ),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Renders the per-SLO verdicts as the `/healthz` JSON document.
pub fn healthz_json(engine: &SloEngine) -> String {
    let verdicts = engine.verdicts();
    let firing = verdicts
        .iter()
        .filter(|v| v.state == AlertState::Firing)
        .count();
    let mut out = String::from("{\n  \"status\": ");
    out.push_str(if firing == 0 {
        "\"ok\""
    } else {
        "\"alerting\""
    });
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            ",\n  \"firing\": {firing},\n  \"watermark_us\": {},\n  \"slos\": [",
            engine.aggregator().watermark_us()
        ),
    );
    for (i, v) in verdicts.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        escape_str(&mut out, &v.name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ", \"state\": \"{}\", \"ok\": {}, \"value\": ",
                match v.state {
                    AlertState::Healthy => "healthy",
                    AlertState::Firing => "firing",
                },
                v.ok
            ),
        );
        fmt_f64(&mut out, v.value);
        out.push_str(", \"threshold\": ");
        fmt_f64(&mut out, v.threshold);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(", \"fires\": {}, \"clears\": {}}}", v.fires, v.clears),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the ring buffer as the `/trace/recent` JSON document.
pub fn recent_json(ring: &MemoryCollector) -> String {
    let events = ring.recent();
    let mut out = String::from("{\n  \"dropped\": ");
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!("{},\n  \"events\": [", ring.dropped()),
    );
    for (i, (seq, name, fields)) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ =
            std::fmt::Write::write_fmt(&mut out, format_args!("    {{\"seq\": {seq}, \"event\": "));
        escape_str(&mut out, name);
        out.push_str(", \"fields\": {");
        for (j, (key, value)) in fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            escape_str(&mut out, key);
            out.push_str(": ");
            match value {
                FieldValue::U64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                FieldValue::I64(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                FieldValue::F64(v) => fmt_f64(&mut out, *v),
                FieldValue::Bool(v) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
                }
                FieldValue::Str(s) => escape_str(&mut out, s),
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Collector;
    use crate::json;
    use crate::slo::SloSpec;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    fn fixture() -> (Arc<MetricsRegistry>, Arc<SloEngine>, Arc<MemoryCollector>) {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_gauge("async.certified_gap", 0.25);
        let engine = Arc::new(SloEngine::new(
            vec![SloSpec::certified_gap(1e-3, 10_000)],
            None,
        ));
        let ring = Arc::new(MemoryCollector::with_capacity(4));
        ring.emit("net.drop", &[("t_us", 7u64.into()), ("from", 1u64.into())]);
        (registry, engine, ring)
    }

    #[test]
    fn serves_all_three_routes_and_404() {
        let (registry, engine, ring) = fixture();
        let mut server = LiveServer::start(0, registry, engine, ring).expect("bind");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.contains("200 OK"), "{head}");
        assert!(body.contains("lb_async_certified_gap 0.25"), "{body}");
        crate::metrics::validate_exposition(&body).expect("served metrics must validate");

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.contains("200 OK"));
        assert!(head.contains("application/json"));
        let v = json::parse(&body).expect("healthz must be valid JSON");
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            v.get("slos").unwrap().as_array().unwrap()[0]
                .get("name")
                .unwrap()
                .as_str(),
            Some("certified_gap")
        );

        let (head, body) = http_get(addr, "/trace/recent");
        assert!(head.contains("200 OK"));
        let v = json::parse(&body).expect("trace/recent must be valid JSON");
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("net.drop"));
        assert_eq!(
            events[0]
                .get("fields")
                .unwrap()
                .get("t_us")
                .unwrap()
                .as_u64(),
            Some(7)
        );

        let (head, _) = http_get(addr, "/nope");
        assert!(head.contains("404"));

        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let (registry, engine, ring) = fixture();
        let server = LiveServer::start(0, registry, engine, ring).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }
}
