//! Deterministic head sampling for web-scale traces.
//!
//! Tracing the n=10,000 × m=100,000 sampled solver or a multi-million
//! job sharded sim at full fidelity would emit hundreds of millions of
//! events. [`SamplingCollector`] wraps any inner [`Collector`] and
//! keeps a deterministic subset, Dapper-style:
//!
//! - **Span trees are sampled head-first and kept whole.** The keep
//!   decision for a root `span_open` is a seed-keyed splitmix64 hash
//!   of its span id; children and the matching `span_close` inherit
//!   the root's verdict, so a sampled trace never contains half a
//!   tree and still passes schema validation.
//! - **Cross-node hops are sampled by trace id**, so every node
//!   observing a distributed trace makes the same keep decision
//!   without coordination.
//! - **Point events are sampled by content**, hashing the event name
//!   and field values with the seed. Decisions depend only on the
//!   event itself — never on arrival order — so the kept set is
//!   identical at any thread count for the same emitted multiset.
//! - **Always-keep classes** (`alert.*`, `account.*`, error events,
//!   `solver.done`/`sampled.done` certificates, partition boundaries)
//!   bypass sampling entirely: the rare, load-bearing events survive
//!   any rate.
//! - **Dropped events aggregate into `sample.digest` events** — per
//!   event type, a drop count plus the dropped events' numeric fields
//!   summed under their original keys — emitted every
//!   [`SamplingConfig::digest_every`] observed events and on flush.
//!   Downstream analysis reweights exactly: kept events plus digest
//!   totals equal the unsampled totals, field for field.
//!
//! Per-event-type rates ([`SamplingConfig::rate_for`]) act as rate
//! caps for hot event families: a type emitted a million times an
//! epoch can be pinned to an expected ceiling by giving it a rate of
//! `cap / expected_volume` while rarer families keep the default.

use crate::event::{Collector, Field, FieldValue};
use crate::span::{SPAN_CLOSE, SPAN_OPEN};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Event-name prefixes that bypass sampling entirely.
const ALWAYS_KEEP_PREFIXES: &[&str] = &[
    "alert.",
    "account.",
    "sample.",
    "solver.done",
    "sampled.done",
    "net.partition",
    "net.heal",
];

/// splitmix64: the repo-wide seed-mixing finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to the unit interval [0, 1).
#[allow(clippy::cast_precision_loss)]
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Order-independent content hash of an event: the name and every
/// field (key and value) folded through splitmix64.
fn content_hash(name: &str, fields: &[Field]) -> u64 {
    let mut h = hash_bytes(name.as_bytes());
    for (key, value) in fields {
        h = splitmix64(h ^ hash_bytes(key.as_bytes()));
        h = splitmix64(h ^ hash_value(value));
    }
    h
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in bytes.chunks(8) {
        let mut word = 0u64;
        for (i, b) in chunk.iter().enumerate() {
            word |= u64::from(*b) << (8 * i);
        }
        h = splitmix64(h ^ word);
    }
    h
}

fn hash_value(value: &FieldValue) -> u64 {
    match value {
        FieldValue::U64(v) => *v,
        #[allow(clippy::cast_sign_loss)]
        FieldValue::I64(v) => *v as u64,
        FieldValue::F64(v) => v.to_bits(),
        FieldValue::Bool(v) => u64::from(*v),
        FieldValue::Str(s) => hash_bytes(s.as_bytes()),
    }
}

/// Configuration for a [`SamplingCollector`].
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Seed keying every hash decision; two collectors with the same
    /// seed keep the same events.
    pub seed: u64,
    /// Keep probability for span trees (decided at the root) and
    /// cross-node traces (decided by trace id).
    pub span_rate: f64,
    /// Default keep probability for point events.
    pub event_rate: f64,
    /// Per-event-type rate overrides, matched by longest prefix, e.g.
    /// `("sim.", 0.001)`. These are the rate caps for hot families.
    pub rates: Vec<(&'static str, f64)>,
    /// Emit accumulated `sample.digest` events after this many
    /// observed events (0 = only on flush).
    pub digest_every: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            seed: 0x5A4D_71D2,
            span_rate: 1.0 / 16.0,
            event_rate: 1.0 / 16.0,
            rates: Vec::new(),
            digest_every: 65_536,
        }
    }
}

impl SamplingConfig {
    /// A config keeping roughly `rate` of spans and point events.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            span_rate: rate,
            event_rate: rate,
            ..Self::default()
        }
    }

    /// Adds a per-event-type rate cap (longest matching prefix wins).
    #[must_use]
    pub fn rate(mut self, prefix: &'static str, rate: f64) -> Self {
        self.rates.push((prefix, rate));
        self
    }

    /// The keep probability for a point event with this name.
    pub fn rate_for(&self, name: &str) -> f64 {
        self.rates
            .iter()
            .filter(|(prefix, _)| name.starts_with(prefix))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(self.event_rate, |&(_, rate)| rate)
    }
}

/// One event type's accumulated drops since the last digest.
#[derive(Default)]
struct DigestEntry {
    count: u64,
    /// Numeric field sums in first-seen field order.
    sums: Vec<(&'static str, Accum)>,
}

/// A numeric accumulator preserving the emitted field kind.
#[derive(Clone, Copy)]
enum Accum {
    U(u64),
    I(i64),
    F(f64),
}

impl Accum {
    fn absorb(&mut self, value: &FieldValue) {
        match (self, value) {
            (Accum::U(acc), FieldValue::U64(v)) => *acc = acc.wrapping_add(*v),
            (Accum::U(acc), FieldValue::Bool(v)) => *acc = acc.wrapping_add(u64::from(*v)),
            (Accum::I(acc), FieldValue::I64(v)) => *acc = acc.wrapping_add(*v),
            (Accum::F(acc), FieldValue::F64(v)) => *acc += *v,
            // Kind drift within a type (rare): drop the sample rather
            // than corrupt the sum; the count still reweights.
            _ => {}
        }
    }

    fn seed(value: &FieldValue) -> Option<Self> {
        match value {
            FieldValue::U64(v) => Some(Accum::U(*v)),
            FieldValue::Bool(v) => Some(Accum::U(u64::from(*v))),
            FieldValue::I64(v) => Some(Accum::I(*v)),
            FieldValue::F64(v) => Some(Accum::F(*v)),
            FieldValue::Str(_) => None,
        }
    }

    fn to_field_value(self) -> FieldValue {
        match self {
            Accum::U(v) => FieldValue::U64(v),
            Accum::I(v) => FieldValue::I64(v),
            Accum::F(v) => FieldValue::F64(v),
        }
    }
}

/// Mutable sampling state behind one lock.
#[derive(Default)]
struct SampleState {
    /// Keep verdicts for currently open spans (erased at close).
    verdicts: BTreeMap<u64, bool>,
    /// Dropped-event aggregation per event type (sorted by name, so
    /// digest emission order is deterministic).
    digest: BTreeMap<&'static str, DigestEntry>,
    /// Events observed since the last digest flush.
    since_digest: u64,
}

/// A deterministic head-sampling collector: forwards a seed-keyed
/// subset of events to the inner collector and aggregates the rest
/// into `sample.digest` events. See the module docs for the policy.
pub struct SamplingCollector {
    inner: Arc<dyn Collector>,
    config: SamplingConfig,
    state: Mutex<SampleState>,
    kept: AtomicU64,
    dropped: AtomicU64,
}

impl SamplingCollector {
    /// Wraps `inner` with the given sampling policy.
    pub fn new(inner: Arc<dyn Collector>, config: SamplingConfig) -> Self {
        Self {
            inner,
            config,
            state: Mutex::new(SampleState::default()),
            kept: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Events forwarded to the inner collector (digests excluded).
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Events absorbed into digests instead of being forwarded.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The sampling policy in force.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Whether this event bypasses sampling.
    fn always_keep(name: &str) -> bool {
        ALWAYS_KEEP_PREFIXES.iter().any(|p| name.starts_with(p))
            || name.contains("error")
            || name.contains("panic")
    }

    /// The keep decision for one event. Mutates span verdict state for
    /// `span_open`/`span_close`.
    fn decide(&self, state: &mut SampleState, name: &'static str, fields: &[Field]) -> bool {
        if Self::always_keep(name) {
            return true;
        }
        let field_u64 = |key: &str| {
            fields.iter().find_map(|(k, v)| match v {
                FieldValue::U64(n) if *k == key => Some(*n),
                _ => None,
            })
        };
        if name == SPAN_OPEN {
            let Some(id) = field_u64("span") else {
                return true; // Malformed open: pass through, let the validator complain.
            };
            let keep = match field_u64("parent").and_then(|p| state.verdicts.get(&p).copied()) {
                // Children inherit the root's verdict so kept trees stay whole.
                Some(parent_kept) => parent_kept,
                None => unit(splitmix64(self.config.seed ^ id)) < self.config.span_rate,
            };
            state.verdicts.insert(id, keep);
            return keep;
        }
        if name == SPAN_CLOSE {
            let Some(id) = field_u64("span") else {
                return true;
            };
            // A close whose open we never saw (collector attached
            // mid-stream) is dropped: keeping it would break span
            // causality in the sampled log.
            return state.verdicts.remove(&id).unwrap_or(false);
        }
        if let Some(trace) = name
            .starts_with("xspan.")
            .then(|| field_u64("trace"))
            .flatten()
        {
            // Every node hashes the same trace id to the same verdict.
            return unit(splitmix64(self.config.seed ^ trace)) < self.config.span_rate;
        }
        let rate = self.config.rate_for(name);
        if rate >= 1.0 {
            return true;
        }
        unit(splitmix64(self.config.seed ^ content_hash(name, fields))) < rate
    }

    /// Absorbs a dropped event into the digest accumulator.
    fn digest_add(state: &mut SampleState, name: &'static str, fields: &[Field]) {
        let entry = state.digest.entry(name).or_default();
        entry.count += 1;
        for (key, value) in fields {
            // `event` and `count` are the digest's own structural keys.
            if matches!(*key, "event" | "count") {
                continue;
            }
            if let Some((_, acc)) = entry.sums.iter_mut().find(|(k, _)| k == key) {
                acc.absorb(value);
            } else if let Some(acc) = Accum::seed(value) {
                entry.sums.push((key, acc));
            }
        }
    }

    /// Emits and clears the accumulated digests (one `sample.digest`
    /// per event type, in name order).
    fn flush_digest(&self, state: &mut SampleState) {
        let digest = std::mem::take(&mut state.digest);
        state.since_digest = 0;
        for (name, entry) in digest {
            let mut fields: Vec<Field> = Vec::with_capacity(2 + entry.sums.len());
            fields.push(("event", FieldValue::Str(std::borrow::Cow::Borrowed(name))));
            fields.push(("count", FieldValue::U64(entry.count)));
            for (key, acc) in entry.sums {
                fields.push((key, acc.to_field_value()));
            }
            self.inner.emit("sample.digest", &fields);
        }
    }
}

impl Collector for SamplingCollector {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn emit(&self, name: &'static str, fields: &[Field]) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if self.decide(&mut state, name, fields) {
            self.kept.fetch_add(1, Ordering::Relaxed);
            self.inner.emit(name, fields);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            Self::digest_add(&mut state, name, fields);
        }
        state.since_digest += 1;
        if self.config.digest_every > 0 && state.since_digest >= self.config.digest_every {
            self.flush_digest(&mut state);
        }
    }

    fn flush(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.flush_digest(&mut state);
        drop(state);
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectors::MemoryCollector;

    fn sampled(rate: f64, seed: u64) -> (Arc<MemoryCollector>, SamplingCollector) {
        let mem = Arc::new(MemoryCollector::default());
        let collector = SamplingCollector::new(mem.clone(), SamplingConfig::new(seed, rate));
        (mem, collector)
    }

    #[test]
    fn always_keep_classes_survive_a_zero_rate() {
        let (mem, s) = sampled(0.0, 1);
        s.emit("alert.fire", &[("slo", "goodput".into())]);
        s.emit("solver.done", &[("converged", true.into())]);
        s.emit("sampled.done", &[("converged", true.into())]);
        s.emit("account.net", &[("sent", 5u64.into())]);
        s.emit("net.partition", &[("t_us", 1u64.into())]);
        s.emit("io.error", &[("code", 5u64.into())]);
        s.emit("solver.sweep", &[("iter", 1u64.into())]);
        s.flush();
        assert_eq!(mem.count("alert.fire"), 1);
        assert_eq!(mem.count("solver.done"), 1);
        assert_eq!(mem.count("sampled.done"), 1);
        assert_eq!(mem.count("account.net"), 1);
        assert_eq!(mem.count("net.partition"), 1);
        assert_eq!(mem.count("io.error"), 1);
        assert_eq!(mem.count("solver.sweep"), 0, "sampled out at rate 0");
        assert_eq!(mem.count("sample.digest"), 1, "the drop was digested");
        assert_eq!(s.kept(), 6);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn span_trees_are_kept_or_dropped_whole() {
        let (mem, s) = sampled(0.5, 42);
        // Emit many two-level trees; every kept open must have its
        // close and its children kept, every dropped root must drop
        // its whole subtree.
        for root in 1..200u64 {
            let id = root * 10;
            s.emit(SPAN_OPEN, &[("span", id.into()), ("name", "outer".into())]);
            s.emit(
                SPAN_OPEN,
                &[
                    ("span", (id + 1).into()),
                    ("parent", id.into()),
                    ("name", "inner".into()),
                ],
            );
            s.emit(SPAN_CLOSE, &[("span", (id + 1).into())]);
            s.emit(SPAN_CLOSE, &[("span", id.into())]);
        }
        let opens = mem.count(SPAN_OPEN);
        let closes = mem.count(SPAN_CLOSE);
        assert_eq!(opens, closes, "every kept open has its close");
        assert_eq!(opens % 2, 0, "trees are kept whole (pairs of spans)");
        assert!(
            opens > 0 && opens < 2 * 199,
            "rate 0.5 kept a strict subset"
        );
    }

    #[test]
    fn xspan_verdicts_agree_across_send_and_recv() {
        let (mem, s) = sampled(0.5, 7);
        for trace in 1..200u64 {
            s.emit(
                "xspan.send",
                &[("trace", trace.into()), ("span", (trace * 3).into())],
            );
            s.emit(
                "xspan.recv",
                &[("trace", trace.into()), ("span", (trace * 3).into())],
            );
        }
        assert_eq!(
            mem.count("xspan.send"),
            mem.count("xspan.recv"),
            "send and recv of the same trace share one verdict"
        );
    }

    #[test]
    fn kept_set_is_identical_across_thread_counts() {
        // The same multiset of events, emitted from 1, 2, and 8
        // threads in arbitrary interleavings, must keep the same set:
        // decisions are content-keyed, never order-keyed.
        let events: Vec<(u64, u64)> = (0..500u64).map(|i| (i, i * 31)).collect();
        let kept_set = |threads: usize| {
            let (mem, s) = sampled(0.25, 99);
            let s = Arc::new(s);
            std::thread::scope(|scope| {
                for chunk in events.chunks(events.len().div_ceil(threads)) {
                    let s = s.clone();
                    scope.spawn(move || {
                        for (a, b) in chunk {
                            s.emit("sim.arrival", &[("job", (*a).into()), ("t", (*b).into())]);
                        }
                    });
                }
            });
            let mut kept: Vec<String> = mem
                .events()
                .into_iter()
                .filter(|(name, _)| *name == "sim.arrival")
                .map(|(_, fields)| format!("{fields:?}"))
                .collect();
            kept.sort();
            kept
        };
        let reference = kept_set(1);
        assert!(!reference.is_empty() && reference.len() < 500);
        assert_eq!(kept_set(2), reference);
        assert_eq!(kept_set(8), reference);
    }

    #[test]
    fn digests_reweight_to_exact_totals() {
        let (mem, s) = sampled(0.125, 3);
        let total: u64 = (0..1000u64).map(|i| i * 7).sum();
        for i in 0..1000u64 {
            s.emit("des.tick", &[("work", (i * 7).into())]);
        }
        s.flush();
        let kept_events = mem.count("des.tick");
        let kept_sum: u64 = mem
            .events()
            .iter()
            .filter(|(name, _)| *name == "des.tick")
            .map(|(_, fields)| match fields[0].1 {
                FieldValue::U64(v) => v,
                _ => 0,
            })
            .sum();
        let (mut digest_count, mut digest_sum) = (0u64, 0u64);
        for (_, fields) in mem
            .events()
            .iter()
            .filter(|(name, _)| *name == "sample.digest")
        {
            assert!(matches!(&fields[0].1, FieldValue::Str(s) if s == "des.tick"));
            if let FieldValue::U64(c) = fields[1].1 {
                digest_count += c;
            }
            if let FieldValue::U64(w) = fields[2].1 {
                digest_sum += w;
            }
        }
        assert_eq!(kept_events as u64 + digest_count, 1000);
        assert_eq!(kept_sum + digest_sum, total, "reweighting is exact");
    }

    #[test]
    fn per_type_rate_caps_override_the_default() {
        let mem = Arc::new(MemoryCollector::default());
        let config = SamplingConfig::new(11, 1.0).rate("sim.", 0.0);
        let s = SamplingCollector::new(mem.clone(), config);
        for i in 0..50u64 {
            s.emit("sim.arrival", &[("job", i.into())]);
            s.emit("ring.shed", &[("round", i.into())]);
        }
        s.flush();
        assert_eq!(mem.count("sim.arrival"), 0, "capped family fully digested");
        assert_eq!(mem.count("ring.shed"), 50, "default rate 1.0 keeps all");
        assert_eq!(mem.count("sample.digest"), 1);
    }

    /// Property-style sweep (the repo carries no proptest dependency,
    /// so the generator is an explicit splitmix64 walk): for every
    /// (seed, rate) pair and a randomized mix of event types, counts
    /// and integer/float sums reconstructed as kept + digest must
    /// exactly equal the emitted totals — reweighting loses nothing.
    #[test]
    fn reweighting_is_exact_over_randomized_workloads() {
        const NAMES: [&str; 4] = ["des.tick", "sim.arrival", "ring.shed", "net.deliver"];
        for case in 0..48u64 {
            let mut prng = splitmix64(case.wrapping_mul(0x9E37_79B9));
            let mut next = || {
                prng = splitmix64(prng);
                prng
            };
            let rate = [0.0, 0.07, 0.25, 0.5, 0.93][case as usize % 5];
            let (mem, s) = sampled(rate, next());
            let events = 200 + (next() % 300);
            let mut emitted_count = std::collections::BTreeMap::new();
            let mut emitted_sum = std::collections::BTreeMap::new();
            for _ in 0..events {
                let name = NAMES[(next() % NAMES.len() as u64) as usize];
                let work = next() % 10_000;
                s.emit(name, &[("work", work.into())]);
                *emitted_count.entry(name).or_insert(0u64) += 1;
                *emitted_sum.entry(name).or_insert(0u64) += work;
            }
            s.flush();
            let mut seen_count = std::collections::BTreeMap::new();
            let mut seen_sum = std::collections::BTreeMap::new();
            for (name, fields) in mem.events() {
                if name == "sample.digest" {
                    let FieldValue::Str(event) = &fields[0].1 else {
                        panic!("digest event field");
                    };
                    let key = NAMES.iter().find(|n| *n == event).unwrap();
                    if let FieldValue::U64(c) = fields[1].1 {
                        *seen_count.entry(*key).or_insert(0u64) += c;
                    }
                    if let FieldValue::U64(w) = fields[2].1 {
                        *seen_sum.entry(*key).or_insert(0u64) += w;
                    }
                } else {
                    *seen_count.entry(name).or_insert(0u64) += 1;
                    if let FieldValue::U64(w) = fields[0].1 {
                        *seen_sum.entry(name).or_insert(0u64) += w;
                    }
                }
            }
            assert_eq!(seen_count, emitted_count, "case {case} rate {rate}");
            assert_eq!(seen_sum, emitted_sum, "case {case} rate {rate}");
            assert_eq!(s.kept() + s.dropped(), events, "case {case}");
        }
    }

    #[test]
    fn periodic_digests_flush_every_n_events() {
        let mem = Arc::new(MemoryCollector::default());
        let mut config = SamplingConfig::new(5, 0.0);
        config.digest_every = 10;
        let s = SamplingCollector::new(mem.clone(), config);
        for i in 0..25u64 {
            s.emit("sim.arrival", &[("job", i.into())]);
        }
        assert_eq!(mem.count("sample.digest"), 2, "two full windows of 10");
        s.flush();
        assert_eq!(mem.count("sample.digest"), 3, "flush drains the tail");
    }
}
