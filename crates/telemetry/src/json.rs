//! A minimal JSON codec: just enough to write and validate the JSONL
//! event log and to read `BENCH_nash.json` references — no external
//! dependencies, matching the `compat/` shim philosophy.
//!
//! Encoding rules (fixed by the schema, pinned by the golden test):
//!
//! - `f64` values use Rust's shortest round-trip `Display`, with a
//!   `.0` suffix forced onto integral finite values so floats never
//!   collapse into integers on re-parse.
//! - Non-finite floats are not representable in JSON; they are encoded
//!   as the strings `"NaN"`, `"inf"`, `"-inf"`.
//! - Strings escape `"`, `\`, and all control characters (`\n`, `\t`,
//!   `\r` short forms; `\u00XX` otherwise).

use std::fmt;

/// A parsed JSON value. Integers that fit `i64`/`u64` are kept exact
/// rather than widened to `f64`, so counters round-trip losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fraction/exponent that fits `i64` (negatives).
    Int(i64),
    /// A number with no fraction/exponent that fits `u64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The object pairs if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the offending byte offset.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or_else(|| self.err("invalid UTF-8 lead byte"))?;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Byte length of a UTF-8 sequence from its lead byte, `None` for
/// continuation/invalid lead bytes.
fn utf8_width(lead: u8) -> Option<usize> {
    match lead {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

impl fmt::Display for Json {
    /// Serializes the value back to JSON text, using the same encoding
    /// conventions as the emitter (`fmt_f64` for floats, full string
    /// escaping) — so `parse(&v.to_string())` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(v) => {
                let mut s = String::new();
                fmt_f64(&mut s, *v);
                f.write_str(&s)
            }
            Json::Str(s) => {
                let mut out = String::new();
                escape_str(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    escape_str(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for the event log: shortest round-trip form, with a
/// forced `.0` on integral finite values so the type survives re-parse.
/// Non-finite values become the strings `"NaN"` / `"inf"` / `"-inf"`.
pub fn fmt_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        let text = format!("{v}");
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[1].0, "c");
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::UInt(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01x", "\"\\q\"", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
        assert!(parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn escape_str_handles_controls() {
        let mut out = String::new();
        escape_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&out).unwrap(), Json::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn fmt_f64_round_trips_and_marks_floats() {
        let cases = [0.0, 1.0, -2.5, 0.1, 1e300, f64::MIN_POSITIVE];
        for v in cases {
            let mut out = String::new();
            fmt_f64(&mut out, v);
            match parse(&out).unwrap() {
                Json::Float(p) => assert_eq!(p.to_bits(), v.to_bits(), "{v}"),
                other => panic!("{v} parsed as {other:?}"),
            }
        }
        let mut out = String::new();
        fmt_f64(&mut out, f64::NAN);
        assert_eq!(out, "\"NaN\"");
        out.clear();
        fmt_f64(&mut out, f64::NEG_INFINITY);
        assert_eq!(out, "\"-inf\"");
    }
}
