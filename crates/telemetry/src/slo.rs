//! Declarative SLOs evaluated online over streaming windows, with a
//! multi-window burn-rate alert state machine.
//!
//! An [`SloSpec`] names a telemetry signal (`event` + numeric `field`),
//! an objective direction, and a threshold. The [`SloEngine`] is itself
//! a [`Collector`]: every event first feeds an internal
//! [`StreamAggregator`], then each SLO is re-evaluated at the new
//! virtual-time watermark. Following the SRE multi-window burn-rate
//! pattern, a violation must show in **both** a short window (is it
//! happening *now*?) and a long window (has it been happening long
//! enough to matter?) before an alert fires — transient single-event
//! spikes cannot page.
//!
//! ## Alert state machine
//!
//! ```text
//!          both windows violate            short window healthy
//!          (and not refractory)            for >= clear_hold_us
//! Healthy ────────────────────▶ Firing ─────────────────────▶ Healthy
//!    ▲                            │  ▲                           │
//!    └── refractory_us elapses ───┘  └── short window violates ──┘
//!        (flap guard: no re-fire         (hold timer resets)
//!         before it expires)
//! ```
//!
//! * **fire** — emitted once on Healthy→Firing as an `alert.fire` event
//!   carrying `{t_us, slo, value, threshold}`;
//! * **persist** — while Firing, further violations emit nothing (the
//!   alert is level-triggered, not edge-spammed);
//! * **clear** — the short window must be continuously healthy for
//!   `clear_hold_us` of virtual time before `alert.clear` is emitted;
//!   a single bad sample resets the hold timer;
//! * **flap guard** — after a clear, re-firing is suppressed for
//!   `refractory_us` so an oscillating signal produces one
//!   fire/clear pair per `refractory_us`, not one per oscillation.
//!
//! All timing uses the aggregator's virtual-time watermark, so the
//! whole machine is deterministic given a deterministic event stream —
//! unit-tested per transition in this module and exercised end-to-end
//! by `experiments watch`.

use crate::event::{enabled, Collector, Field};
use crate::stream::{StreamAggregator, WindowSpec};
use std::sync::{Arc, Mutex};

/// Objective direction: which side of the threshold is healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// The windowed mean must stay `<= threshold` (gap, staleness,
    /// shed rate).
    Below,
    /// The windowed mean must stay `>= threshold` (goodput).
    Above,
}

/// A declarative service-level objective over one telemetry signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable SLO name, carried in `alert.*` events and `/healthz`.
    pub name: String,
    /// Event name of the observed signal.
    pub event: String,
    /// Numeric field of the observed signal.
    pub field: String,
    /// Healthy side of the threshold.
    pub objective: Objective,
    /// The threshold itself.
    pub threshold: f64,
    /// Short window ("is it happening now?") in virtual µs.
    pub short_window_us: u64,
    /// Long window ("has it persisted?") in virtual µs.
    pub long_window_us: u64,
    /// Continuous short-window health required before clearing.
    pub clear_hold_us: u64,
    /// Re-fire suppression after a clear (flap guard).
    pub refractory_us: u64,
}

impl SloSpec {
    /// Certified ε-Nash gap must stay within `epsilon`
    /// (signal: `watch.gap` / `gap`).
    pub fn certified_gap(epsilon: f64, window_us: u64) -> Self {
        Self {
            name: "certified_gap".into(),
            event: "watch.gap".into(),
            field: "gap".into(),
            objective: Objective::Below,
            threshold: epsilon,
            short_window_us: window_us,
            long_window_us: window_us * 4,
            clear_hold_us: window_us,
            refractory_us: window_us,
        }
    }

    /// Goodput fraction must stay at or above `floor`
    /// (signal: `watch.goodput` / `fraction`).
    pub fn goodput_min(floor: f64, window_us: u64) -> Self {
        Self {
            name: "goodput".into(),
            event: "watch.goodput".into(),
            field: "fraction".into(),
            objective: Objective::Above,
            threshold: floor,
            short_window_us: window_us,
            long_window_us: window_us * 4,
            clear_hold_us: window_us,
            refractory_us: window_us,
        }
    }

    /// Coordinator view staleness must stay within `tau_us`
    /// (signal: `async.staleness` / `age_us`).
    pub fn staleness_max(tau_us: f64, window_us: u64) -> Self {
        Self {
            name: "view_staleness".into(),
            event: "async.staleness".into(),
            field: "age_us".into(),
            objective: Objective::Below,
            threshold: tau_us,
            short_window_us: window_us,
            long_window_us: window_us * 4,
            clear_hold_us: window_us,
            refractory_us: window_us,
        }
    }

    /// Shed-rate fraction must stay within `budget`
    /// (signal: `watch.shed` / `fraction`).
    pub fn shed_rate_max(budget: f64, window_us: u64) -> Self {
        Self {
            name: "shed_rate".into(),
            event: "watch.shed".into(),
            field: "fraction".into(),
            objective: Objective::Below,
            threshold: budget,
            short_window_us: window_us,
            long_window_us: window_us * 4,
            clear_hold_us: window_us,
            refractory_us: window_us,
        }
    }
}

/// Alert lifecycle state of one SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No alert active; eligible to fire (subject to the flap guard).
    Healthy,
    /// Alert active; `alert.fire` was emitted and `alert.clear` has not.
    Firing,
}

/// Point-in-time verdict for one SLO, as served by `/healthz`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// The SLO's stable name.
    pub name: String,
    /// Current alert state.
    pub state: AlertState,
    /// Short-window mean of the signal (`NaN` with no data).
    pub value: f64,
    /// The objective threshold.
    pub threshold: f64,
    /// Whether the short window currently satisfies the objective
    /// (`true` when the window is empty: no evidence of violation).
    pub ok: bool,
    /// Lifetime count of `alert.fire` transitions.
    pub fires: u64,
    /// Lifetime count of `alert.clear` transitions.
    pub clears: u64,
}

#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    state: AlertState,
    /// Watermark since which the short window has been continuously
    /// healthy (valid while Firing).
    healthy_since: Option<u64>,
    /// Watermark of the last clear (flap guard anchor).
    cleared_at: Option<u64>,
    fires: u64,
    clears: u64,
    last_value: f64,
}

impl SloState {
    fn violates(&self, mean: f64) -> bool {
        if mean.is_nan() {
            return false; // no data is not a violation
        }
        match self.spec.objective {
            Objective::Below => mean > self.spec.threshold,
            Objective::Above => mean < self.spec.threshold,
        }
    }
}

/// The SLO engine: a [`Collector`] that watches the stream and emits
/// `alert.fire` / `alert.clear` events to `output`. See module docs.
pub struct SloEngine {
    agg: StreamAggregator,
    slos: Mutex<Vec<SloState>>,
    output: Option<Arc<dyn Collector>>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("agg", &self.agg)
            .field("slos", &self.slos)
            .field("output", &self.output.as_ref().map(|_| ".."))
            .finish()
    }
}

impl SloEngine {
    /// Builds an engine for `specs`; alert events go to `output`
    /// (`None` = evaluate silently, verdicts still query-able).
    pub fn new(specs: Vec<SloSpec>, output: Option<Arc<dyn Collector>>) -> Self {
        let mut agg = StreamAggregator::new();
        for s in &specs {
            agg = agg
                .window(WindowSpec::new(&s.event, &s.field, s.short_window_us))
                .window(WindowSpec::new(&s.event, &s.field, s.long_window_us));
        }
        let slos = specs
            .into_iter()
            .map(|spec| SloState {
                spec,
                state: AlertState::Healthy,
                healthy_since: None,
                cleared_at: None,
                fires: 0,
                clears: 0,
                last_value: f64::NAN,
            })
            .collect();
        Self {
            agg,
            slos: Mutex::new(slos),
            output,
        }
    }

    /// The underlying aggregator (watermark, window stats, counts).
    pub fn aggregator(&self) -> &StreamAggregator {
        &self.agg
    }

    /// Current verdict for every SLO, in declaration order.
    ///
    /// Recovers from a poisoned lock: per-SLO state is plain data that
    /// stays internally consistent under panic, and `/healthz` must
    /// keep answering even after a scrape thread died mid-evaluate.
    pub fn verdicts(&self) -> Vec<SloVerdict> {
        let slos = self.slos.lock().unwrap_or_else(|e| e.into_inner());
        slos.iter()
            .map(|s| SloVerdict {
                name: s.spec.name.clone(),
                state: s.state,
                value: s.last_value,
                threshold: s.spec.threshold,
                ok: !s.violates(s.last_value),
                fires: s.fires,
                clears: s.clears,
            })
            .collect()
    }

    /// Window stats helper shared by both evaluation paths.
    ///
    /// The two windows on the same (event, field) share one spec key in
    /// the aggregator, so means are read per-width via the window list
    /// order: short first, long second (insertion order in `new`).
    fn means(&self, spec: &SloSpec) -> (f64, f64) {
        // `StreamAggregator::window_stats` returns the FIRST window
        // matching (event, field) — the short one. The long window's
        // mean is recovered from the dedicated accessor below.
        let short = self
            .agg
            .window_stats(&spec.event, &spec.field)
            .map_or(f64::NAN, |s| s.mean());
        let long = self
            .agg
            .window_stats_at(&spec.event, &spec.field, 1)
            .map_or(f64::NAN, |s| s.mean());
        (short, long)
    }

    fn evaluate(&self) {
        let watermark = self.agg.watermark_us();
        let mut slos = self.slos.lock().unwrap_or_else(|e| e.into_inner());
        for s in slos.iter_mut() {
            let (short, long) = self.means(&s.spec);
            s.last_value = short;
            let short_bad = s.violates(short);
            let long_bad = s.violates(long);
            match s.state {
                AlertState::Healthy => {
                    let refractory = s
                        .cleared_at
                        .is_some_and(|at| watermark < at.saturating_add(s.spec.refractory_us));
                    if short_bad && long_bad && !refractory {
                        s.state = AlertState::Firing;
                        s.healthy_since = None;
                        s.fires += 1;
                        if let Some(c) = enabled(self.output.as_ref()) {
                            c.emit(
                                "alert.fire",
                                &[
                                    ("t_us", watermark.into()),
                                    ("slo", s.spec.name.clone().into()),
                                    ("value", short.into()),
                                    ("threshold", s.spec.threshold.into()),
                                ],
                            );
                        }
                    }
                }
                AlertState::Firing => {
                    if short_bad {
                        s.healthy_since = None; // violation resets the hold
                    } else {
                        let since = *s.healthy_since.get_or_insert(watermark);
                        if watermark >= since.saturating_add(s.spec.clear_hold_us) {
                            s.state = AlertState::Healthy;
                            s.healthy_since = None;
                            s.cleared_at = Some(watermark);
                            s.clears += 1;
                            if let Some(c) = enabled(self.output.as_ref()) {
                                c.emit(
                                    "alert.clear",
                                    &[
                                        ("t_us", watermark.into()),
                                        ("slo", s.spec.name.clone().into()),
                                        ("value", short.into()),
                                        ("threshold", s.spec.threshold.into()),
                                    ],
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Collector for SloEngine {
    fn emit(&self, name: &'static str, fields: &[Field]) {
        self.agg.emit(name, fields);
        self.evaluate();
    }

    fn flush(&self) {
        if let Some(c) = &self.output {
            c.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectors::MemoryCollector;

    /// Gap SLO: threshold 0.5, short window 1 ms, long window 4 ms,
    /// clear hold 1 ms, refractory 1 ms.
    fn engine() -> (Arc<MemoryCollector>, SloEngine) {
        let sink = Arc::new(MemoryCollector::default());
        let spec = SloSpec {
            name: "gap".into(),
            event: "watch.gap".into(),
            field: "gap".into(),
            objective: Objective::Below,
            threshold: 0.5,
            short_window_us: 1_000,
            long_window_us: 4_000,
            clear_hold_us: 1_000,
            refractory_us: 1_000,
        };
        let eng = SloEngine::new(vec![spec], Some(sink.clone() as Arc<dyn Collector>));
        (sink, eng)
    }

    fn gap(e: &SloEngine, t: u64, v: f64) {
        e.emit("watch.gap", &[("t_us", t.into()), ("gap", v.into())]);
    }

    #[test]
    fn fires_only_when_both_windows_violate() {
        let (sink, e) = engine();
        // One spike: short window violates, long window (mean over
        // 4 ms including healthy samples) does not.
        for t in 0..8 {
            gap(&e, t * 500, 0.1);
        }
        gap(&e, 4_100, 10.0);
        // Long mean = (7*0.1.. + 10)/n — with 8 healthy samples in the
        // long window the mean is (0.7 + 10)/8 > 0.5 actually. Use a
        // milder spike to keep the long window healthy.
        let (sink2, e2) = engine();
        for t in 0..8 {
            gap(&e2, t * 500, 0.1);
        }
        gap(&e2, 4_100, 0.9); // short mean 0.9 > 0.5; long mean ≈ 0.2
        assert_eq!(sink2.count("alert.fire"), 0, "single spike must not page");
        drop(sink);
        drop(e);

        // Sustained violation: both windows cross.
        let (sink3, e3) = engine();
        for t in 0..12 {
            gap(&e3, t * 500, 2.0);
        }
        assert_eq!(sink3.count("alert.fire"), 1);
    }

    #[test]
    fn firing_persists_without_duplicate_fire_events() {
        let (sink, e) = engine();
        for t in 0..40 {
            gap(&e, t * 500, 2.0);
        }
        assert_eq!(sink.count("alert.fire"), 1, "level-triggered, not spam");
        assert_eq!(sink.count("alert.clear"), 0);
        assert_eq!(e.verdicts()[0].state, AlertState::Firing);
    }

    #[test]
    fn clears_after_continuous_healthy_hold() {
        let (sink, e) = engine();
        for t in 0..12 {
            gap(&e, t * 500, 2.0); // fire
        }
        // Healthy samples; hold = 1 ms of continuous health. The first
        // healthy evaluation starts the timer once the short window's
        // mean recovers (old bad samples must slide out first).
        for t in 12..30 {
            gap(&e, t * 500, 0.05);
        }
        assert_eq!(sink.count("alert.fire"), 1);
        assert_eq!(sink.count("alert.clear"), 1);
        assert_eq!(e.verdicts()[0].state, AlertState::Healthy);
    }

    #[test]
    fn a_bad_sample_resets_the_clear_hold() {
        let (sink, e) = engine();
        for t in 0..12 {
            gap(&e, t * 500, 2.0); // fire at some t
        }
        // Recover just short of the hold, then violate again.
        gap(&e, 8_000, 0.05); // short window now healthy (bad slid out)
        gap(&e, 8_500, 0.05); // hold running
        gap(&e, 8_900, 2.0); // short mean spikes back over: hold resets
        assert_eq!(sink.count("alert.clear"), 0, "hold must reset");
        assert_eq!(e.verdicts()[0].state, AlertState::Firing);
    }

    #[test]
    fn refractory_guards_against_flapping() {
        let (sink, e) = engine();
        // Fire, then feed healthy samples exactly until the clear —
        // so the watermark at the clear is known to the test.
        for t in 0..12 {
            gap(&e, t * 500, 2.0);
        }
        let mut t = 12 * 500;
        while e.verdicts()[0].clears == 0 {
            gap(&e, t, 0.05);
            t += 500;
            assert!(t < 100_000, "alert never cleared");
        }
        assert_eq!(
            (sink.count("alert.fire"), sink.count("alert.clear")),
            (1, 1)
        );
        let cleared_at = e.aggregator().watermark_us();

        // Immediately violate again, still inside refractory_us.
        gap(&e, cleared_at + 100, 5.0);
        gap(&e, cleared_at + 200, 5.0);
        gap(&e, cleared_at + 300, 5.0);
        assert_eq!(sink.count("alert.fire"), 1, "refractory must suppress");

        // After the refractory period the alert may fire again.
        for k in 1..=10 {
            gap(&e, cleared_at + 1_000 + k * 500, 5.0);
        }
        assert_eq!(sink.count("alert.fire"), 2);
    }

    #[test]
    fn no_data_is_healthy_and_verdicts_reflect_state() {
        let (_sink, e) = engine();
        let v = &e.verdicts()[0];
        assert_eq!(v.state, AlertState::Healthy);
        assert!(v.ok, "empty window is not a violation");
        assert!(v.value.is_nan());
        assert_eq!((v.fires, v.clears), (0, 0));
        assert_eq!(v.name, "gap");
        assert_eq!(v.threshold, 0.5);
    }

    #[test]
    fn above_objective_fires_on_low_values() {
        let sink = Arc::new(MemoryCollector::default());
        let spec = SloSpec {
            name: "goodput".into(),
            objective: Objective::Above,
            threshold: 0.9,
            event: "watch.goodput".into(),
            field: "fraction".into(),
            short_window_us: 1_000,
            long_window_us: 4_000,
            clear_hold_us: 1_000,
            refractory_us: 1_000,
        };
        let e = SloEngine::new(vec![spec], Some(sink.clone() as Arc<dyn Collector>));
        for t in 0..12u64 {
            e.emit(
                "watch.goodput",
                &[("t_us", (t * 500).into()), ("fraction", 0.3.into())],
            );
        }
        assert_eq!(sink.count("alert.fire"), 1);
    }

    #[test]
    fn verdicts_survive_a_poisoned_lock() {
        // A scrape thread that panics while holding the SLO lock must
        // not wedge /healthz: verdicts() recovers the poisoned lock
        // and keeps serving the (still consistent) per-SLO state.
        let engine = Arc::new(SloEngine::new(
            vec![SloSpec::certified_gap(1e-3, 10_000)],
            None,
        ));
        engine.emit(
            "watch.gap",
            &[("t_us", 1_000u64.into()), ("gap", 0.5.into())],
        );
        let poisoner = engine.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.slos.lock().expect("first lock is clean");
            panic!("die holding the slo lock");
        })
        .join();
        let verdicts = engine.verdicts();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "certified_gap");
        // Evaluation keeps working after recovery too.
        engine.emit(
            "watch.gap",
            &[("t_us", 2_000u64.into()), ("gap", 0.5.into())],
        );
        assert_eq!(engine.verdicts().len(), 1);
    }
}
