//! The versioned JSONL event-log schema.
//!
//! A log is UTF-8 text, one JSON object per line:
//!
//! ```text
//! {"schema":"lb-telemetry","version":1}
//! {"seq":0,"t_us":0,"event":"solver.start","fields":{"users":40,"computers":32}}
//! {"seq":1,"t_us":13,"event":"solver.sweep","fields":{"iter":1,"norm":1.25}}
//! ```
//!
//! The first line is the header; every following line is an event with
//! a strictly increasing `seq`, a non-decreasing microsecond timestamp
//! `t_us`, a non-empty `event` name, and a flat `fields` object whose
//! values are numbers, booleans, or strings (non-finite floats are
//! encoded as the strings `"NaN"`/`"inf"`/`"-inf"`).
//!
//! Version 2 adds causal spans (see [`crate::span`]): `span_open`
//! events carry an integer `span` id, a string `name`, and an optional
//! integer `parent`; `span_close` events carry the `span` id of an
//! open span. The parser validates span causality — ids are unique,
//! parents were opened earlier in the log, and closes reference spans
//! that are actually open. Spans left open at end-of-log are legal
//! (a truncated run); analysis tools decide how to treat them.
//!
//! Version 3 adds the live-observability event families:
//!
//! - **Cross-node trace hops** — `xspan.send`/`xspan.recv` events carry
//!   non-zero integer `trace` and `span` ids (the `TraceContext`
//!   propagated inside `VirtualNet` messages; see
//!   `lb_distributed::messages::TraceContext` for the id derivation).
//!   Unlike in-process `span_open` ids, an xspan id may legally recur —
//!   a duplicated network message delivers the *same* span twice by
//!   design — so the validator checks field shape, not uniqueness.
//! - **SLO alerts** — `alert.fire`/`alert.clear` events carry a
//!   non-empty string `slo` naming the objective.
//!
//! Version 4 adds the sampling and accounting families:
//!
//! - **Sampling digests** — `sample.digest` events aggregate the
//!   events a [`crate::sample::SamplingCollector`] dropped since the
//!   last digest: a non-empty string `event` naming the dropped type,
//!   an integer `count ≥ 1`, and the dropped events' numeric fields
//!   summed under their original keys, so downstream analysis can
//!   reweight sampled traces back to exact totals.
//! - **Resource accounting** — `account.*` events snapshot
//!   per-subsystem counters (RNG draws, network messages/bytes,
//!   solver best-replies, DES events) at span close; every field is an
//!   integer counter.
//!
//! Any change to this shape bumps [`SCHEMA_VERSION`]; the golden test
//! in `tests/golden.rs` pins the byte-level format of the current
//! version and keeps the previous versions' golden files as
//! backward-compat fixtures. Version-1 (no span events), version-2
//! (no alert/xspan events), and version-3 (no sample/account events)
//! logs still parse.
//!
//! Logs can be multi-GB at web scale, so validation is streaming:
//! [`LogReader`] wraps any [`std::io::BufRead`] and yields validated
//! [`LogEvent`]s one line at a time without ever holding the file in
//! memory; [`parse_log`] is the convenience wrapper that collects a
//! full in-memory [`EventLog`] from the same reader.

use crate::event::{Field, FieldValue};
use crate::json::{self, Json};
use std::fmt::Write as _;
use std::io::BufRead;

/// Schema identifier carried in the header line.
pub const SCHEMA_NAME: &str = "lb-telemetry";

/// Current schema version; bumped on any incompatible format change.
pub const SCHEMA_VERSION: u32 = 4;

/// Oldest schema version the parser still accepts.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Renders the header line (without trailing newline).
pub fn header_line() -> String {
    format!("{{\"schema\":\"{SCHEMA_NAME}\",\"version\":{SCHEMA_VERSION}}}")
}

/// Renders one event line (without trailing newline).
pub fn encode_event_line(seq: u64, t_us: u64, name: &str, fields: &[Field]) -> String {
    let mut out = String::with_capacity(64 + 24 * fields.len());
    let _ = write!(out, "{{\"seq\":{seq},\"t_us\":{t_us},\"event\":");
    json::escape_str(&mut out, name);
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_str(&mut out, key);
        out.push(':');
        encode_field_value(&mut out, value);
    }
    out.push_str("}}");
    out
}

fn encode_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => json::fmt_f64(out, *v),
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(s) => json::escape_str(out, s),
    }
}

/// One parsed event from a log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Sequence number (strictly increasing within a log).
    pub seq: u64,
    /// Microseconds since the collector was created (non-decreasing).
    pub t_us: u64,
    /// Event name, e.g. `solver.sweep`.
    pub name: String,
    /// Fields in emission order.
    pub fields: Vec<(String, Json)>,
}

impl LogEvent {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A fully parsed and validated event log.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    /// Schema version from the header.
    pub version: u32,
    /// Events in log order.
    pub events: Vec<LogEvent>,
}

impl EventLog {
    /// Number of events with the given name.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Iterator over events with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a LogEvent> {
        self.events.iter().filter(move |e| e.name == name)
    }
}

/// Parses and validates a complete JSONL event log: header first, then
/// events with strictly increasing `seq`, non-decreasing `t_us`, and
/// flat scalar field values. Convenience wrapper over [`LogReader`]
/// for logs that fit in memory; streaming consumers should iterate a
/// [`LogReader`] directly.
///
/// # Errors
///
/// A human-readable message naming the offending line (1-based).
pub fn parse_log(text: &str) -> Result<EventLog, String> {
    let reader = LogReader::new(text.as_bytes())?;
    let version = reader.version();
    let events = reader.collect::<Result<Vec<_>, _>>()?;
    Ok(EventLog { version, events })
}

/// Parses and validates the header line, returning the version.
fn parse_header(line: &str, lineno: usize) -> Result<u32, String> {
    let header = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some(SCHEMA_NAME) => {}
        other => {
            return Err(format!(
                "line {lineno}: header schema is {other:?}, expected {SCHEMA_NAME:?}"
            ))
        }
    }
    let version = header
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: header missing integer version"))?;
    if version < u64::from(MIN_SCHEMA_VERSION) || version > u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "line {lineno}: schema version {version} unsupported \
             (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
        ));
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok(version as u32)
}

/// The per-line validation state shared by [`parse_log`] and
/// [`LogReader`]: seq monotonicity, the t_us clock, span causality,
/// and the versioned family checks.
#[derive(Default)]
struct LineValidator {
    next_seq: u64,
    last_t_us: u64,
    spans: SpanValidator,
}

impl LineValidator {
    /// Validates one event line and decodes it.
    fn check_line(&mut self, line: &str, lineno: usize) -> Result<LogEvent, String> {
        let value = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let seq = value
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing integer seq"))?;
        if seq != self.next_seq {
            return Err(format!(
                "line {lineno}: seq {seq} out of order (expected {})",
                self.next_seq
            ));
        }
        self.next_seq = seq + 1;
        let t_us = value
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing integer t_us"))?;
        if t_us < self.last_t_us {
            return Err(format!(
                "line {lineno}: t_us {t_us} went backwards (previous {})",
                self.last_t_us
            ));
        }
        self.last_t_us = t_us;
        let name = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string event"))?;
        if name.is_empty() {
            return Err(format!("line {lineno}: empty event name"));
        }
        let fields = value
            .get("fields")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("line {lineno}: missing fields object"))?;
        for (key, v) in fields {
            match v {
                Json::Int(_) | Json::UInt(_) | Json::Float(_) | Json::Bool(_) | Json::Str(_) => {}
                other => {
                    return Err(format!(
                        "line {lineno}: field {key:?} has non-scalar value {other:?}"
                    ))
                }
            }
        }
        let event = LogEvent {
            seq,
            t_us,
            name: name.to_string(),
            fields: fields.to_vec(),
        };
        self.spans
            .check(&event)
            .map_err(|e| format!("line {lineno}: {e}"))?;
        check_v3_families(&event).map_err(|e| format!("line {lineno}: {e}"))?;
        check_v4_families(&event).map_err(|e| format!("line {lineno}: {e}"))?;
        Ok(event)
    }
}

/// A streaming, validating reader over a JSONL event log.
///
/// Reads one line at a time from any [`BufRead`] source, applying the
/// exact validation [`parse_log`] applies — header shape, seq/t_us
/// monotonicity, span causality, versioned family checks — without
/// ever holding more than the current line in memory, so multi-GB
/// traces can be scanned in constant space. Construction reads and
/// validates the header; iteration yields each validated event (or
/// the first error, after which the iterator fuses).
pub struct LogReader<R> {
    input: R,
    buf: String,
    lineno: usize,
    version: u32,
    state: LineValidator,
    done: bool,
}

impl LogReader<std::io::BufReader<std::fs::File>> {
    /// Opens a log file for streaming validation.
    ///
    /// # Errors
    ///
    /// The open/read error, or an invalid header.
    pub fn open(path: &std::path::Path) -> Result<Self, String> {
        let file =
            std::fs::File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
        Self::new(std::io::BufReader::new(file))
    }
}

impl<R: BufRead> LogReader<R> {
    /// Wraps a buffered reader, consuming and validating the header
    /// line.
    ///
    /// # Errors
    ///
    /// A read error, a missing header, or an invalid header.
    pub fn new(mut input: R) -> Result<Self, String> {
        let mut buf = String::new();
        let mut lineno = 0usize;
        loop {
            buf.clear();
            let n = input
                .read_line(&mut buf)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if n == 0 {
                return Err("empty log: missing header line".into());
            }
            lineno += 1;
            if !buf.trim().is_empty() {
                break;
            }
        }
        let version = parse_header(buf.trim_end_matches(['\n', '\r']), lineno)?;
        Ok(Self {
            input,
            buf: String::new(),
            lineno,
            version,
            state: LineValidator::default(),
            done: false,
        })
    }

    /// Schema version from the header.
    pub fn version(&self) -> u32 {
        self.version
    }
}

impl<R: BufRead> Iterator for LogReader<R> {
    type Item = Result<LogEvent, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(format!("line {}: {e}", self.lineno + 1)));
                }
            }
            self.lineno += 1;
            if self.buf.trim().is_empty() {
                continue;
            }
            let result = self
                .state
                .check_line(self.buf.trim_end_matches(['\n', '\r']), self.lineno);
            if result.is_err() {
                self.done = true;
            }
            return Some(result);
        }
    }
}

/// Streaming validator for the span causality rules of schema v2.
#[derive(Default)]
struct SpanValidator {
    /// Every span id ever opened (ids are never reused within a log).
    opened: std::collections::BTreeSet<u64>,
    /// Span ids opened but not yet closed.
    open: std::collections::BTreeSet<u64>,
}

impl SpanValidator {
    fn check(&mut self, event: &LogEvent) -> Result<(), String> {
        match event.name.as_str() {
            crate::span::SPAN_OPEN => {
                let id = event
                    .field("span")
                    .and_then(Json::as_u64)
                    .ok_or("span_open missing integer span id")?;
                if id == 0 {
                    return Err("span id 0 is reserved".into());
                }
                match event.field("name").and_then(Json::as_str) {
                    Some(n) if !n.is_empty() => {}
                    _ => return Err(format!("span_open {id} missing non-empty name")),
                }
                if !self.opened.insert(id) {
                    return Err(format!("span id {id} opened twice"));
                }
                if let Some(parent) = event.field("parent") {
                    let parent = parent
                        .as_u64()
                        .ok_or(format!("span_open {id} has non-integer parent"))?;
                    if !self.opened.contains(&parent) {
                        return Err(format!(
                            "span_open {id} references parent {parent} never opened"
                        ));
                    }
                }
                self.open.insert(id);
                Ok(())
            }
            crate::span::SPAN_CLOSE => {
                let id = event
                    .field("span")
                    .and_then(Json::as_u64)
                    .ok_or("span_close missing integer span id")?;
                if !self.open.remove(&id) {
                    return Err(format!("span_close for span {id} that is not open"));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Field-shape validation for the v3 event families (`alert.*` and
/// `xspan.*`). Applied unconditionally: v1/v2 logs never contained
/// these names, so old logs are unaffected.
fn check_v3_families(event: &LogEvent) -> Result<(), String> {
    match event.name.as_str() {
        "alert.fire" | "alert.clear" => match event.field("slo").and_then(Json::as_str) {
            Some(s) if !s.is_empty() => Ok(()),
            Some(_) => Err(format!("{} has empty slo name", event.name)),
            None => Err(format!("{} missing string slo field", event.name)),
        },
        "xspan.send" | "xspan.recv" => {
            for key in ["trace", "span"] {
                match event.field(key).and_then(Json::as_u64) {
                    Some(0) => return Err(format!("{} has zero {key} id", event.name)),
                    Some(_) => {}
                    None => return Err(format!("{} missing integer {key} id", event.name)),
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Field-shape validation for the v4 event families (`sample.*` and
/// `account.*`). Applied unconditionally: older logs never contained
/// these names, so old logs are unaffected.
fn check_v4_families(event: &LogEvent) -> Result<(), String> {
    if event.name == "sample.digest" {
        match event.field("event").and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            Some(_) => return Err("sample.digest has empty event name".into()),
            None => return Err("sample.digest missing string event field".into()),
        }
        match event.field("count").and_then(Json::as_u64) {
            Some(n) if n >= 1 => {}
            Some(_) => return Err("sample.digest has zero count".into()),
            None => return Err("sample.digest missing integer count".into()),
        }
    } else if event.name.starts_with("account.") {
        // Accounting snapshots are pure counter dumps: every field is
        // an integer, so cross-run diffs can compare them exactly.
        for (key, v) in &event.fields {
            match v {
                Json::Int(_) | Json::UInt(_) => {}
                other => {
                    return Err(format!(
                        "{} field {key:?} must be an integer counter, got {other:?}",
                        event.name
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Whether a parsed field value is the faithful decoding of an emitted
/// [`FieldValue`] under this schema (used by the round-trip proptest).
pub fn field_round_trips(original: &FieldValue, parsed: &Json) -> bool {
    match (original, parsed) {
        (FieldValue::U64(a), p) => p.as_u64() == Some(*a),
        (FieldValue::I64(a), p) => p.as_i64() == Some(*a),
        (FieldValue::Bool(a), Json::Bool(b)) => a == b,
        (FieldValue::Str(a), Json::Str(b)) => a.as_ref() == b,
        (FieldValue::F64(a), Json::Float(b)) => a.to_bits() == b.to_bits(),
        (FieldValue::F64(a), Json::Str(b)) => {
            (a.is_nan() && b == "NaN")
                || (*a == f64::INFINITY && b == "inf")
                || (*a == f64::NEG_INFINITY && b == "-inf")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_parse_yields_same_events() {
        let text = format!(
            "{}\n{}\n{}\n",
            header_line(),
            encode_event_line(
                0,
                0,
                "solver.start",
                &[("users", 40u64.into()), ("scheme", "NASH_P".into())]
            ),
            encode_event_line(
                1,
                7,
                "solver.sweep",
                &[
                    ("iter", 1u64.into()),
                    ("norm", 0.25.into()),
                    ("converged", false.into()),
                ]
            ),
        );
        let log = parse_log(&text).unwrap();
        assert_eq!(log.version, SCHEMA_VERSION);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].name, "solver.start");
        assert_eq!(
            log.events[0].field("scheme").unwrap().as_str(),
            Some("NASH_P")
        );
        assert_eq!(log.events[1].field("norm").unwrap().as_f64(), Some(0.25));
        assert_eq!(log.count("solver.sweep"), 1);
        assert_eq!(log.named("solver.sweep").count(), 1);
    }

    #[test]
    fn parse_log_rejects_bad_logs() {
        let header = header_line();
        let ok = encode_event_line(0, 0, "e", &[]);
        let cases = [
            ("".to_string(), "missing header"),
            ("{\"schema\":\"other\",\"version\":1}".to_string(), "schema"),
            (
                format!("{{\"schema\":\"{SCHEMA_NAME}\",\"version\":99}}"),
                "version",
            ),
            (
                format!("{header}\n{}", encode_event_line(5, 0, "e", &[])),
                "seq",
            ),
            (
                format!(
                    "{header}\n{}\n{}",
                    encode_event_line(0, 10, "e", &[]),
                    encode_event_line(1, 3, "e", &[])
                ),
                "t_us",
            ),
            (format!("{header}\n{{\"seq\":0,\"t_us\":0}}"), "event"),
            (
                format!(
                    "{header}\n{{\"seq\":0,\"t_us\":0,\"event\":\"e\",\"fields\":{{\"x\":[1]}}}}"
                ),
                "non-scalar",
            ),
            (ok, "header"),
        ];
        for (text, why) in cases {
            assert!(parse_log(&text).is_err(), "accepted bad log ({why})");
        }
    }

    #[test]
    fn version_1_logs_still_parse() {
        let text = format!(
            "{{\"schema\":\"{SCHEMA_NAME}\",\"version\":1}}\n{}",
            encode_event_line(0, 0, "e", &[])
        );
        let log = parse_log(&text).unwrap();
        assert_eq!(log.version, 1);
        assert_eq!(log.events.len(), 1);
    }

    #[test]
    fn version_2_logs_still_parse() {
        // A v2 log with spans but none of the v3 families.
        let text = format!(
            "{{\"schema\":\"{SCHEMA_NAME}\",\"version\":2}}\n{}\n{}\n",
            encode_event_line(
                0,
                0,
                "span_open",
                &[("span", 1u64.into()), ("name", "solve".into())]
            ),
            encode_event_line(1, 5, "span_close", &[("span", 1u64.into())]),
        );
        let log = parse_log(&text).unwrap();
        assert_eq!(log.version, 2);
        assert_eq!(log.events.len(), 2);
    }

    #[test]
    fn v3_alert_and_xspan_fields_are_validated() {
        let wrap = |line: String| format!("{}\n{line}\n", header_line());

        // Well-formed v3 events parse.
        let good = format!(
            "{}\n{}\n{}\n{}\n",
            header_line(),
            encode_event_line(
                0,
                0,
                "xspan.send",
                &[("trace", 7u64.into()), ("span", 9u64.into())]
            ),
            encode_event_line(
                1,
                3,
                "xspan.recv",
                &[("trace", 7u64.into()), ("span", 9u64.into())]
            ),
            encode_event_line(2, 4, "alert.fire", &[("slo", "goodput".into())]),
        );
        assert!(parse_log(&good).is_ok());

        // Duplicate delivery of the same xspan id is legal (net.dup).
        let dup = format!(
            "{}\n{}\n{}\n",
            header_line(),
            encode_event_line(
                0,
                0,
                "xspan.recv",
                &[("trace", 7u64.into()), ("span", 9u64.into())]
            ),
            encode_event_line(
                1,
                1,
                "xspan.recv",
                &[("trace", 7u64.into()), ("span", 9u64.into())]
            ),
        );
        assert!(parse_log(&dup).is_ok());

        let bad: Vec<(String, &str)> = vec![
            (
                encode_event_line(0, 0, "alert.fire", &[("value", 1.0.into())]),
                "fire without slo",
            ),
            (
                encode_event_line(0, 0, "alert.clear", &[("slo", "".into())]),
                "clear with empty slo",
            ),
            (
                encode_event_line(0, 0, "xspan.send", &[("trace", 7u64.into())]),
                "send without span",
            ),
            (
                encode_event_line(
                    0,
                    0,
                    "xspan.recv",
                    &[("trace", 0u64.into()), ("span", 1u64.into())],
                ),
                "zero trace id",
            ),
        ];
        for (line, why) in bad {
            assert!(parse_log(&wrap(line)).is_err(), "accepted bad log ({why})");
        }
    }

    #[test]
    fn span_causality_is_validated() {
        let open = |seq, t, fields: &[Field]| encode_event_line(seq, t, "span_open", fields);
        let close = |seq, t, fields: &[Field]| encode_event_line(seq, t, "span_close", fields);
        let span = |id: u64| ("span", FieldValue::U64(id));
        let name = |n: &'static str| ("name", FieldValue::from(n));
        let parent = |id: u64| ("parent", FieldValue::U64(id));

        // A well-formed nested pair parses.
        let good = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            header_line(),
            open(0, 0, &[span(1), name("outer")]),
            open(1, 1, &[span(2), parent(1), name("inner")]),
            close(2, 2, &[span(2)]),
            close(3, 3, &[span(1)]),
        );
        assert!(parse_log(&good).is_ok());

        // A span left open at end-of-log is legal (truncated run).
        let truncated = format!("{}\n{}\n", header_line(), open(0, 0, &[span(1), name("x")]));
        assert!(parse_log(&truncated).is_ok());

        let bad_cases: Vec<(String, &str)> = vec![
            (open(0, 0, &[name("x")]), "open without id"),
            (open(0, 0, &[span(0), name("x")]), "id zero"),
            (open(0, 0, &[span(1)]), "open without name"),
            (
                format!(
                    "{}\n{}",
                    open(0, 0, &[span(1), name("a")]),
                    open(1, 1, &[span(1), name("b")])
                ),
                "duplicate id",
            ),
            (
                open(0, 0, &[span(2), parent(1), name("x")]),
                "unknown parent",
            ),
            (close(0, 0, &[span(9)]), "close of never-opened span"),
            (
                format!(
                    "{}\n{}\n{}",
                    open(0, 0, &[span(1), name("a")]),
                    close(1, 1, &[span(1)]),
                    close(2, 2, &[span(1)])
                ),
                "double close",
            ),
        ];
        for (body, why) in bad_cases {
            let text = format!("{}\n{body}\n", header_line());
            assert!(parse_log(&text).is_err(), "accepted bad span log ({why})");
        }
    }

    #[test]
    fn v4_sample_and_account_fields_are_validated() {
        let wrap = |line: String| format!("{}\n{line}\n", header_line());

        // Well-formed v4 events parse: a digest with summed numeric
        // fields and an integer-only accounting snapshot.
        let good = format!(
            "{}\n{}\n{}\n",
            header_line(),
            encode_event_line(
                0,
                0,
                "sample.digest",
                &[
                    ("event", "net.drop".into()),
                    ("count", 17u64.into()),
                    ("t_us", 123_456u64.into()),
                ]
            ),
            encode_event_line(
                1,
                5,
                "account.solver",
                &[
                    ("best_replies", 120u64.into()),
                    ("water_fills", 360u64.into()),
                ]
            ),
        );
        assert!(parse_log(&good).is_ok());

        let bad: Vec<(String, &str)> = vec![
            (
                encode_event_line(0, 0, "sample.digest", &[("count", 1u64.into())]),
                "digest without event name",
            ),
            (
                encode_event_line(
                    0,
                    0,
                    "sample.digest",
                    &[("event", "".into()), ("count", 1u64.into())],
                ),
                "digest with empty event name",
            ),
            (
                encode_event_line(0, 0, "sample.digest", &[("event", "x".into())]),
                "digest without count",
            ),
            (
                encode_event_line(
                    0,
                    0,
                    "sample.digest",
                    &[("event", "x".into()), ("count", 0u64.into())],
                ),
                "digest with zero count",
            ),
            (
                encode_event_line(0, 0, "account.net", &[("subsystem", "net".into())]),
                "account with a string field",
            ),
            (
                encode_event_line(0, 0, "account.des", &[("utilization", 0.5.into())]),
                "account with a float field",
            ),
        ];
        for (line, why) in bad {
            assert!(parse_log(&wrap(line)).is_err(), "accepted bad log ({why})");
        }
    }

    #[test]
    fn log_reader_streams_events_one_at_a_time() {
        let text = format!(
            "{}\n\n{}\n{}\n",
            header_line(),
            encode_event_line(0, 0, "solver.start", &[("users", 40u64.into())]),
            encode_event_line(1, 7, "solver.done", &[("converged", true.into())]),
        );
        let mut reader = LogReader::new(text.as_bytes()).unwrap();
        assert_eq!(reader.version(), SCHEMA_VERSION);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.name, "solver.start");
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.name, "solver.done");
        assert_eq!(second.t_us, 7);
        assert!(reader.next().is_none());
        assert!(reader.next().is_none(), "reader fuses at EOF");
    }

    #[test]
    fn log_reader_reports_the_offending_line_and_fuses() {
        // Line 3 has an out-of-order seq; the reader must surface it
        // with its 1-based line number and then stop.
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            header_line(),
            encode_event_line(0, 0, "e", &[]),
            encode_event_line(9, 1, "e", &[]),
            encode_event_line(1, 2, "e", &[]),
        );
        let mut reader = LogReader::new(text.as_bytes()).unwrap();
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("seq 9"), "{err}");
        assert!(reader.next().is_none(), "reader fuses after an error");

        // parse_log (the collecting wrapper) surfaces the same error.
        assert_eq!(parse_log(&text).unwrap_err(), err);
    }

    #[test]
    fn log_reader_and_parse_log_agree_on_a_valid_log() {
        let text = format!(
            "{}\n{}\n{}\n",
            header_line(),
            encode_event_line(
                0,
                0,
                "span_open",
                &[("span", 1u64.into()), ("name", "solve".into())]
            ),
            encode_event_line(1, 5, "span_close", &[("span", 1u64.into())]),
        );
        let streamed: Vec<LogEvent> = LogReader::new(text.as_bytes())
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(parse_log(&text).unwrap().events, streamed);
    }

    #[test]
    fn field_round_trips_covers_non_finite_floats() {
        assert!(field_round_trips(
            &FieldValue::F64(f64::NAN),
            &Json::Str("NaN".into())
        ));
        assert!(field_round_trips(
            &FieldValue::F64(f64::INFINITY),
            &Json::Str("inf".into())
        ));
        assert!(!field_round_trips(
            &FieldValue::F64(1.0),
            &Json::Str("inf".into())
        ));
    }
}
