//! Concrete [`Collector`] implementations.

use crate::event::{Collector, Field, FieldValue};
use crate::schema;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a [`JsonlCollector`] stamps `t_us` on events.
enum Clock {
    /// Wall time since collector construction (production).
    Wall(Instant),
    /// `seq * step` microseconds — fully deterministic output, used by
    /// the golden-file test so the log bytes are reproducible.
    Fixed { step_us: u64 },
}

struct JsonlInner {
    out: Box<dyn Write + Send>,
    seq: u64,
    error: bool,
}

/// Appends the versioned JSONL event log described in [`schema`] to any
/// writer. The header line is written at construction; each emit
/// appends one event line with a collector-stamped sequence number and
/// microsecond timestamp.
///
/// I/O errors are latched (checkable via [`JsonlCollector::had_error`])
/// rather than panicking, so a full disk cannot take down a run that
/// would have succeeded without telemetry.
pub struct JsonlCollector {
    inner: Mutex<JsonlInner>,
    clock: Clock,
}

impl JsonlCollector {
    /// Wraps a writer, immediately appending the schema header line.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self::with_clock(out, Clock::Wall(Instant::now()))
    }

    /// Creates a collector writing to a file at `path` (truncating).
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        ))))
    }

    /// A collector whose timestamps are `seq * step_us`, making the
    /// output bytes fully deterministic (golden tests).
    pub fn with_fixed_clock(out: Box<dyn Write + Send>, step_us: u64) -> Self {
        Self::with_clock(out, Clock::Fixed { step_us })
    }

    fn with_clock(mut out: Box<dyn Write + Send>, clock: Clock) -> Self {
        let mut error = false;
        if writeln!(out, "{}", schema::header_line()).is_err() {
            error = true;
        }
        JsonlCollector {
            inner: Mutex::new(JsonlInner { out, seq: 0, error }),
            clock,
        }
    }

    /// Whether any write failed since construction.
    pub fn had_error(&self) -> bool {
        self.inner.lock().expect("jsonl lock").error
    }
}

impl Collector for JsonlCollector {
    fn emit(&self, name: &'static str, fields: &[Field]) {
        let mut inner = self.inner.lock().expect("jsonl lock");
        let t_us = match self.clock {
            Clock::Wall(start) => start.elapsed().as_micros() as u64,
            Clock::Fixed { step_us } => inner.seq * step_us,
        };
        let line = schema::encode_event_line(inner.seq, t_us, name, fields);
        inner.seq += 1;
        if writeln!(inner.out, "{line}").is_err() {
            inner.error = true;
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock().expect("jsonl lock");
        if inner.out.flush().is_err() {
            inner.error = true;
        }
    }
}

/// Renders events as single human-readable stderr lines — the CLI's
/// `--verbose` progress stream (`[  12.3ms] solver.sweep iter=4 ...`).
pub struct StderrCollector {
    start: Instant,
}

impl StderrCollector {
    /// Creates a collector stamping times relative to now.
    pub fn new() -> Self {
        StderrCollector {
            start: Instant::now(),
        }
    }
}

impl Default for StderrCollector {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a field value for human-readable output.
fn render_value(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) => format!("{v:.6}"),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Str(s) => s.to_string(),
    }
}

impl Collector for StderrCollector {
    fn emit(&self, name: &'static str, fields: &[Field]) {
        let ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut line = format!("[{ms:>10.3}ms] {name}");
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            line.push_str(&render_value(value));
        }
        eprintln!("{line}");
    }
}

/// Fans every event out to a list of collectors (e.g. JSONL file plus
/// stderr for a `--verbose` CLI run). Enabled when any child is.
///
/// The fan-out is atomic: an internal lock serializes `emit` calls so
/// that every enabled child receives events in the *same* order. Each
/// sink stamps its own `seq`/`t_us` from arrival order, so without the
/// lock two threads emitting concurrently could be interleaved
/// differently by different children — sink A records `E1` before `E2`
/// while sink B records `E2` before `E1`, making the sinks' sequence
/// numbers disagree about which event happened "first". That broke the
/// cross-sink meaning of `seq`/`t_us` monotonicity whenever children
/// differed (e.g. only one side `enabled()`), because the skipped child
/// re-joined the stream at an arbitrary interleaving point. Enablement
/// is also sampled once per event, under the same lock, so a child
/// whose `enabled()` answer changes mid-emit cannot observe a torn
/// fan-out.
pub struct TeeCollector {
    children: Vec<Arc<dyn Collector>>,
    /// Serializes the fan-out loop (see the type-level docs).
    order: Mutex<()>,
}

impl TeeCollector {
    /// Wraps the given collectors.
    pub fn new(children: Vec<Arc<dyn Collector>>) -> Self {
        TeeCollector {
            children,
            order: Mutex::new(()),
        }
    }
}

impl Collector for TeeCollector {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }

    fn emit(&self, name: &'static str, fields: &[Field]) {
        let _order = self.order.lock().expect("tee lock");
        for child in &self.children {
            if child.enabled() {
                child.emit(name, fields);
            }
        }
    }

    fn flush(&self) {
        let _order = self.order.lock().expect("tee lock");
        for child in &self.children {
            child.flush();
        }
    }
}

struct MemoryInner {
    events: std::collections::VecDeque<(u64, &'static str, Vec<Field>)>,
    /// Lifetime sequence number of the next event (survives eviction,
    /// so `/trace/recent` consumers can detect gaps).
    next_seq: u64,
    /// `None` = unbounded (the test default); `Some(k)` = ring of the
    /// most recent `k` events (the long-running live-endpoint use).
    capacity: Option<usize>,
    /// Events evicted by the ring bound.
    dropped: u64,
}

/// Buffers events in memory — unbounded by default (test assertions),
/// or as a fixed-capacity ring via [`MemoryCollector::with_capacity`]
/// (the `/trace/recent` last-K buffer of the live endpoint, where an
/// unbounded buffer would grow without limit for the life of the
/// process). Counts are lifetime totals either way.
pub struct MemoryCollector {
    inner: Mutex<MemoryInner>,
}

impl Default for MemoryCollector {
    fn default() -> Self {
        Self {
            inner: Mutex::new(MemoryInner {
                events: std::collections::VecDeque::new(),
                next_seq: 0,
                capacity: None,
                dropped: 0,
            }),
        }
    }
}

impl MemoryCollector {
    /// A ring buffer keeping only the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (a ring that can hold nothing).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity event ring");
        let c = Self::default();
        c.inner.lock().expect("memory lock").capacity = Some(capacity);
        c
    }

    /// A snapshot of the buffered events (everything emitted so far
    /// when unbounded; the last `capacity` when ring-bounded).
    pub fn events(&self) -> Vec<(&'static str, Vec<Field>)> {
        self.inner
            .lock()
            .expect("memory lock")
            .events
            .iter()
            .map(|(_, n, f)| (*n, f.clone()))
            .collect()
    }

    /// The buffered events with their lifetime sequence numbers, oldest
    /// first — the `/trace/recent` payload.
    pub fn recent(&self) -> Vec<(u64, &'static str, Vec<Field>)> {
        self.inner
            .lock()
            .expect("memory lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted by the ring bound (0 when unbounded).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("memory lock").dropped
    }

    /// Number of *buffered* events with the given name.
    pub fn count(&self, name: &str) -> usize {
        self.inner
            .lock()
            .expect("memory lock")
            .events
            .iter()
            .filter(|(_, n, _)| *n == name)
            .count()
    }
}

impl Collector for MemoryCollector {
    fn emit(&self, name: &'static str, fields: &[Field]) {
        let mut inner = self.inner.lock().expect("memory lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back((seq, name, fields.to_vec()));
        if let Some(cap) = inner.capacity {
            while inner.events.len() > cap {
                inner.events.pop_front();
                inner.dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::parse_log;

    /// A shared growable byte sink for inspecting collector output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_collector_writes_header_and_valid_events() {
        let buf = SharedBuf::default();
        let collector = JsonlCollector::new(Box::new(buf.clone()));
        collector.emit("a.b", &[("x", 1u64.into()), ("y", 2.5.into())]);
        collector.emit("c", &[("label", "hi".into())]);
        collector.flush();
        assert!(!collector.had_error());
        let log = parse_log(&buf.contents()).unwrap();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[0].field("y").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn fixed_clock_makes_output_deterministic() {
        let render = || {
            let buf = SharedBuf::default();
            let c = JsonlCollector::with_fixed_clock(Box::new(buf.clone()), 10);
            c.emit("e", &[("i", 0u64.into())]);
            c.emit("e", &[("i", 1u64.into())]);
            c.flush();
            buf.contents()
        };
        let first = render();
        assert_eq!(first, render());
        let log = parse_log(&first).unwrap();
        assert_eq!(log.events[1].t_us, 10);
    }

    #[test]
    fn jsonl_collector_latches_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let collector = JsonlCollector::new(Box::new(Failing));
        collector.emit("e", &[]);
        assert!(collector.had_error());
    }

    #[test]
    fn bounded_memory_collector_keeps_only_the_last_k() {
        let c = MemoryCollector::with_capacity(3);
        for i in 0..5u64 {
            c.emit("e", &[("i", i.into())]);
        }
        assert_eq!(c.dropped(), 2);
        let recent = c.recent();
        assert_eq!(recent.len(), 3);
        // Lifetime seqs survive eviction: 2, 3, 4 remain.
        assert_eq!(
            recent.iter().map(|(s, _, _)| *s).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(c.count("e"), 3, "count reflects the buffer");

        let unbounded = MemoryCollector::default();
        for i in 0..5u64 {
            unbounded.emit("e", &[("i", i.into())]);
        }
        assert_eq!(unbounded.dropped(), 0);
        assert_eq!(unbounded.events().len(), 5);
    }

    #[test]
    fn tee_fans_out_and_respects_child_enablement() {
        let a = Arc::new(MemoryCollector::default());
        let b = Arc::new(MemoryCollector::default());
        let tee = TeeCollector::new(vec![a.clone(), b.clone()]);
        assert!(tee.enabled());
        tee.emit("x", &[]);
        assert_eq!(a.count("x"), 1);
        assert_eq!(b.count("x"), 1);
        let empty = TeeCollector::new(vec![]);
        assert!(!empty.enabled());
    }
}
