//! Golden-file test pinning schema version 4 at the byte level, plus
//! backward-compat tests that the committed version-2 and version-3
//! golden files still parse.
//!
//! If the v4 test fails because the format changed intentionally, bump
//! `SCHEMA_VERSION` and regenerate the golden file by running the test
//! with `LB_TELEMETRY_BLESS=1`. The v2/v3 files are frozen forever —
//! they are compatibility fixtures, never re-blessed.

use lb_telemetry::{parse_log, Collector, FieldValue, JsonlCollector, SCHEMA_VERSION};
use std::io::Write;
use std::sync::{Arc, Mutex};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/schema_v4.jsonl");
const GOLDEN_V3_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/schema_v3.jsonl");
const GOLDEN_V2_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/schema_v2.jsonl");

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Emits one representative event of every field type and event family
/// through a fixed-clock collector — the exact byte stream is the
/// golden file.
fn render_reference_log() -> String {
    let buf = SharedBuf::default();
    let collector = JsonlCollector::with_fixed_clock(Box::new(buf.clone()), 10);
    collector.emit(
        "solver.start",
        &[
            ("scheme", FieldValue::from("NASH_P")),
            ("users", FieldValue::from(40u64)),
            ("computers", FieldValue::from(32u64)),
            ("tolerance", FieldValue::from(1e-4)),
        ],
    );
    collector.emit(
        "solver.sweep",
        &[
            ("iter", FieldValue::from(1u64)),
            ("norm", FieldValue::from(0.5)),
            ("max_d_delta", FieldValue::from(0.125)),
            ("converged", FieldValue::from(false)),
        ],
    );
    collector.emit(
        "ring.shed",
        &[
            ("round", FieldValue::from(3u64)),
            ("delta", FieldValue::from(-2i64)),
            ("fraction", FieldValue::from(0.0625)),
        ],
    );
    collector.emit(
        "edge.cases",
        &[
            ("nan", FieldValue::from(f64::NAN)),
            ("inf", FieldValue::from(f64::INFINITY)),
            ("neg_inf", FieldValue::from(f64::NEG_INFINITY)),
            ("integral_float", FieldValue::from(2.0)),
            (
                "label",
                FieldValue::from("quote\" slash\\ tab\t".to_string()),
            ),
        ],
    );
    // The version-2 additions: causal span open/close pairs, nested.
    collector.emit(
        "span_open",
        &[
            ("span", FieldValue::from(1u64)),
            ("name", FieldValue::from("solver.solve")),
            ("users", FieldValue::from(40u64)),
        ],
    );
    collector.emit(
        "span_open",
        &[
            ("span", FieldValue::from(2u64)),
            ("parent", FieldValue::from(1u64)),
            ("name", FieldValue::from("solver.sweep")),
            ("iter", FieldValue::from(1u64)),
        ],
    );
    collector.emit(
        "span_close",
        &[
            ("span", FieldValue::from(2u64)),
            ("name", FieldValue::from("solver.sweep")),
            ("norm", FieldValue::from(0.5)),
        ],
    );
    collector.emit(
        "span_close",
        &[
            ("span", FieldValue::from(1u64)),
            ("name", FieldValue::from("solver.solve")),
        ],
    );
    // The version-3 additions: a cross-node trace hop (send, its
    // duplicated delivery carrying the SAME span ids — legal under
    // net.dup) and a burn-rate alert pair.
    collector.emit(
        "xspan.send",
        &[
            ("t_us", FieldValue::from(1_000u64)),
            ("trace", FieldValue::from(0x0100_0000_0001u64)),
            ("span", FieldValue::from(0x0200_0000_0007u64)),
            ("parent", FieldValue::from(0u64)),
            ("from", FieldValue::from(1u64)),
            ("to", FieldValue::from(0u64)),
        ],
    );
    for _ in 0..2 {
        collector.emit(
            "xspan.recv",
            &[
                ("t_us", FieldValue::from(1_350u64)),
                ("trace", FieldValue::from(0x0100_0000_0001u64)),
                ("span", FieldValue::from(0x0200_0000_0007u64)),
                ("from", FieldValue::from(1u64)),
                ("to", FieldValue::from(0u64)),
            ],
        );
    }
    collector.emit(
        "alert.fire",
        &[
            ("t_us", FieldValue::from(2_000u64)),
            ("slo", FieldValue::from("certified_gap")),
            ("value", FieldValue::from(0.25)),
            ("threshold", FieldValue::from(1e-3)),
        ],
    );
    collector.emit(
        "alert.clear",
        &[
            ("t_us", FieldValue::from(9_000u64)),
            ("slo", FieldValue::from("certified_gap")),
            ("value", FieldValue::from(0.0005)),
            ("threshold", FieldValue::from(1e-3)),
        ],
    );
    // The version-4 additions: a sampling digest (dropped-event
    // aggregate with numeric-field sums under the original keys) and a
    // per-subsystem resource-accounting snapshot.
    collector.emit(
        "sample.digest",
        &[
            ("event", FieldValue::from("sim.arrival")),
            ("count", FieldValue::from(4_096u64)),
            ("t_us", FieldValue::from(81_920_000u64)),
        ],
    );
    collector.emit(
        "account.solver",
        &[
            ("sweeps", FieldValue::from(12u64)),
            ("best_replies", FieldValue::from(480u64)),
            ("water_fills", FieldValue::from(480u64)),
            ("refreshes", FieldValue::from(12u64)),
        ],
    );
    collector.flush();
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).unwrap()
}

#[test]
fn schema_v4_bytes_match_the_golden_file() {
    let rendered = render_reference_log();
    if std::env::var_os("LB_TELEMETRY_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present; regenerate with LB_TELEMETRY_BLESS=1");
    assert_eq!(
        rendered, golden,
        "schema output drifted from the version-{SCHEMA_VERSION} golden file; \
         if intentional, bump SCHEMA_VERSION and re-bless"
    );
}

#[test]
fn golden_file_is_schema_valid() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap();
    let log = parse_log(&golden).unwrap();
    assert_eq!(log.version, SCHEMA_VERSION);
    assert_eq!(log.events.len(), 15);
    assert_eq!(log.events[0].name, "solver.start");
    assert_eq!(log.events[3].field("nan").unwrap().as_str(), Some("NaN"));
    assert_eq!(
        log.events[3].field("integral_float").unwrap().as_f64(),
        Some(2.0)
    );
    // The span pair parses with intact causality metadata.
    assert_eq!(log.events[4].name, "span_open");
    assert_eq!(log.events[5].field("parent").unwrap().as_u64(), Some(1));
    assert_eq!(log.events[6].field("norm").unwrap().as_f64(), Some(0.5));
    assert_eq!(log.events[7].name, "span_close");
    // The v3 families parse: duplicated xspan ids and the alert pair.
    assert_eq!(log.events[9].name, "xspan.recv");
    assert_eq!(
        log.events[9].field("span").unwrap().as_u64(),
        log.events[10].field("span").unwrap().as_u64(),
        "net.dup delivers the same span id twice"
    );
    assert_eq!(
        log.events[11].field("slo").unwrap().as_str(),
        Some("certified_gap")
    );
    assert_eq!(log.events[12].name, "alert.clear");
    // The v4 families parse: a digest with its reweighting fields and
    // an all-integer accounting snapshot.
    assert_eq!(log.events[13].name, "sample.digest");
    assert_eq!(
        log.events[13].field("event").unwrap().as_str(),
        Some("sim.arrival")
    );
    assert_eq!(log.events[13].field("count").unwrap().as_u64(), Some(4_096));
    assert_eq!(log.events[14].name, "account.solver");
    assert_eq!(
        log.events[14].field("water_fills").unwrap().as_u64(),
        Some(480)
    );
}

#[test]
fn v2_golden_log_still_parses() {
    // Backward compat: the frozen v2 golden file (written by the PR 4/5
    // collector) must keep parsing under the v4 schema.
    let golden = std::fs::read_to_string(GOLDEN_V2_PATH)
        .expect("the v2 golden file is a frozen compatibility fixture");
    let log = parse_log(&golden).unwrap();
    assert_eq!(log.version, 2);
    assert_eq!(log.events.len(), 8);
    assert_eq!(log.events[0].name, "solver.start");
    assert_eq!(log.events[7].name, "span_close");
}

#[test]
fn v3_golden_log_still_parses() {
    // Backward compat: the frozen v3 golden file (written by the PR 9
    // collector) must keep parsing under the v4 schema.
    let golden = std::fs::read_to_string(GOLDEN_V3_PATH)
        .expect("the v3 golden file is a frozen compatibility fixture");
    let log = parse_log(&golden).unwrap();
    assert_eq!(log.version, 3);
    assert_eq!(log.events.len(), 13);
    assert_eq!(log.events[0].name, "solver.start");
    assert_eq!(log.events[12].name, "alert.clear");
}
