//! Property test: every event the collectors can emit round-trips
//! through the schema parser — names, field order, and values (with the
//! documented non-finite-float encoding) all survive.

use lb_telemetry::schema::{encode_event_line, field_round_trips, header_line, parse_log};
use lb_telemetry::{FieldValue, Json};
use proptest::prelude::*;

/// Leak a generated key so it satisfies the `&'static str` field-key
/// contract. Bounded by the proptest case count, so acceptable in a
/// test process.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// Arbitrary `f64` by bit pattern: hits NaNs, infinities, subnormals,
/// and negative zero as well as ordinary values.
fn any_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

/// Strings over a punctuation-heavy alphabet that exercises every
/// escape class the encoder knows (quotes, backslashes, controls,
/// multi-byte UTF-8).
fn any_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', 'é', '猫', '😀',
        '\u{2028}',
    ];
    prop::collection::vec(0usize..ALPHABET.len(), 0..16)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Identifier-style names (event names, field keys).
fn any_name() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['a', 'b', 'z', 'A', 'Z', '0', '9', '_', '.'];
    (
        prop::collection::vec(0usize..ALPHABET.len(), 0..12),
        0usize..5,
    )
        .prop_map(|(idx, first)| {
            let mut s = String::new();
            s.push(['a', 'e', 'r', 's', 'x'][first]);
            s.extend(idx.into_iter().map(|i| ALPHABET[i]));
            s
        })
}

fn any_field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(FieldValue::U64),
        (0u64..u64::MAX).prop_map(|b| FieldValue::I64(b as i64)),
        any_f64().prop_map(FieldValue::F64),
        (0u32..2).prop_map(|b| FieldValue::Bool(b == 1)),
        any_string().prop_map(FieldValue::from),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn emitted_events_round_trip_through_the_parser(
        events in prop::collection::vec(
            (
                any_name(),
                prop::collection::vec((any_name(), any_field_value()), 0..6),
            ),
            1..5,
        ),
    ) {
        // Encode the generated events into a complete log.
        let mut text = header_line();
        text.push('\n');
        let mut expected: Vec<(&'static str, Vec<(&'static str, FieldValue)>)> = Vec::new();
        for (i, (name, fields)) in events.into_iter().enumerate() {
            let fields: Vec<(&'static str, FieldValue)> = fields
                .into_iter()
                .map(|(k, v)| (leak(k), v))
                .collect();
            let name = leak(name);
            text.push_str(&encode_event_line(i as u64, (i as u64) * 3, name, &fields));
            text.push('\n');
            expected.push((name, fields));
        }

        let log = parse_log(&text).unwrap();
        prop_assert_eq!(log.events.len(), expected.len());
        for (event, (name, fields)) in log.events.iter().zip(&expected) {
            prop_assert_eq!(&event.name, name);
            prop_assert_eq!(event.fields.len(), fields.len());
            for ((parsed_key, parsed), (key, original)) in event.fields.iter().zip(fields) {
                prop_assert_eq!(parsed_key, key);
                prop_assert!(
                    field_round_trips(original, parsed),
                    "{:?} decoded as {:?}",
                    original,
                    parsed
                );
            }
        }
    }

    #[test]
    fn parser_accepts_any_float_value(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        let mut text = header_line();
        text.push('\n');
        text.push_str(&encode_event_line(0, 0, "e", &[("v", FieldValue::F64(v))]));
        let log = parse_log(&text).unwrap();
        let parsed = log.events[0].field("v").unwrap();
        prop_assert!(field_round_trips(&FieldValue::F64(v), parsed));
    }
}

#[test]
fn duplicate_keys_are_preserved_in_order() {
    // The schema keeps fields as an ordered list, so duplicate keys are
    // representable; `field()` returns the first.
    let mut text = header_line();
    text.push('\n');
    text.push_str(&encode_event_line(
        0,
        0,
        "e",
        &[("k", FieldValue::U64(1)), ("k", FieldValue::U64(2))],
    ));
    let log = parse_log(&text).unwrap();
    assert_eq!(log.events[0].fields.len(), 2);
    assert_eq!(log.events[0].field("k"), Some(&Json::UInt(1)));
}
