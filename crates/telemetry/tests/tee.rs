//! Regression tests for [`TeeCollector`] ordering guarantees.
//!
//! Each underlying sink stamps its own `seq`/`t_us` from arrival order,
//! so the tee must hand every enabled child the *same* event order even
//! under concurrent emitters, and must keep delivering a monotone
//! stream to the enabled side when the other side is `enabled() ==
//! false`. Before the fan-out was made atomic, two threads could be
//! interleaved differently by different children, making the sinks'
//! sequence numbers disagree about event order.

use lb_telemetry::{parse_log, Collector, Field, JsonlCollector, TeeCollector};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A shared growable byte sink for reading a collector's output back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A collector that reports itself disabled; receiving any event is a
/// test failure.
struct DisabledSink;

impl Collector for DisabledSink {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&self, name: &'static str, _fields: &[Field]) {
        panic!("disabled child received event `{name}`");
    }
}

/// Event names per sink, in the order the sink recorded them.
fn recorded_order(text: &str) -> Vec<String> {
    let log = parse_log(text).expect("sink output is schema-valid");
    log.events.iter().map(|e| e.name.clone()).collect()
}

const EMITTERS: usize = 4;
const EVENTS_PER_EMITTER: usize = 250;

/// The event names thread `t` emits (a distinct static name per thread
/// so the recorded interleaving is observable).
fn name_for(t: usize) -> &'static str {
    ["tee.a", "tee.b", "tee.c", "tee.d"][t]
}

#[test]
fn concurrent_emits_reach_all_sinks_in_one_order() {
    let buf_a = SharedBuf::default();
    let buf_b = SharedBuf::default();
    let tee = Arc::new(TeeCollector::new(vec![
        Arc::new(JsonlCollector::new(Box::new(buf_a.clone()))),
        Arc::new(JsonlCollector::new(Box::new(buf_b.clone()))),
    ]));

    std::thread::scope(|s| {
        for t in 0..EMITTERS {
            let tee = Arc::clone(&tee);
            s.spawn(move || {
                for i in 0..EVENTS_PER_EMITTER {
                    tee.emit(name_for(t), &[("i", (i as u64).into())]);
                }
            });
        }
    });
    tee.flush();

    // Both sinks parse (strictly increasing `seq`, non-decreasing
    // `t_us`) and recorded the *identical* event order, so their
    // sequence numbers agree about which event happened first.
    let order_a = recorded_order(&buf_a.contents());
    let order_b = recorded_order(&buf_b.contents());
    assert_eq!(order_a.len(), EMITTERS * EVENTS_PER_EMITTER);
    assert_eq!(order_a, order_b, "sinks disagree about event order");
}

#[test]
fn one_disabled_side_keeps_the_enabled_sink_monotone() {
    let buf = SharedBuf::default();
    let tee = Arc::new(TeeCollector::new(vec![
        Arc::new(DisabledSink) as Arc<dyn Collector>,
        Arc::new(JsonlCollector::new(Box::new(buf.clone()))),
    ]));
    assert!(tee.enabled(), "one enabled child keeps the tee enabled");

    std::thread::scope(|s| {
        for t in 0..EMITTERS {
            let tee = Arc::clone(&tee);
            s.spawn(move || {
                for i in 0..EVENTS_PER_EMITTER {
                    tee.emit(name_for(t), &[("i", (i as u64).into())]);
                }
            });
        }
    });
    tee.flush();

    // The enabled sink saw every event, in a single monotone stream —
    // parse_log enforces strictly increasing `seq` and non-decreasing
    // `t_us`. The disabled sink (checked inside `DisabledSink::emit`)
    // saw nothing.
    let log = parse_log(&buf.contents()).expect("enabled sink output is schema-valid");
    assert_eq!(log.events.len(), EMITTERS * EVENTS_PER_EMITTER);
    for (i, ev) in log.events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "gap in the enabled sink's seq");
    }
}

#[test]
fn spans_through_a_tee_stay_causally_valid_per_sink() {
    use lb_telemetry::Span;

    let buf = SharedBuf::default();
    let jsonl: Arc<dyn Collector> = Arc::new(JsonlCollector::new(Box::new(buf.clone())));
    let tee: Arc<dyn Collector> = Arc::new(TeeCollector::new(vec![
        Arc::new(DisabledSink) as Arc<dyn Collector>,
        jsonl,
    ]));

    let root = Span::root(Some(&tee), "tee.root", &[]).expect("tee is enabled");
    let child = root.child("tee.child", &[]);
    child.close();
    root.close();
    tee.flush();

    // parse_log validates the span causality rules of schema v2, so a
    // torn fan-out (open delivered, close dropped or reordered) fails.
    let log = parse_log(&buf.contents()).unwrap();
    assert_eq!(log.count("span_open"), 2);
    assert_eq!(log.count("span_close"), 2);
}
