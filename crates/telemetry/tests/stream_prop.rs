//! Property tests for the streaming aggregator: for a fixed event
//! stream the windows are bit-deterministic across replays, and window
//! contents are stable under reordering of the stream (windows are
//! set-like over `(t_us, value)` observations — arrival order may only
//! matter for the EWMA, never for a window).

use lb_telemetry::stream::{EwmaSpec, StreamAggregator, WindowSpec};
use lb_telemetry::Collector;
use proptest::prelude::*;

const EVENT_NAMES: [&str; 2] = ["watch.gap", "watch.goodput"];

/// One generated observation. Values are quarter-integers so sums are
/// exact in f64 regardless of addition order — letting the reorder
/// property assert bitwise equality instead of tolerances.
#[derive(Debug, Clone, Copy)]
struct Obs {
    name: &'static str,
    t_us: u64,
    value: f64,
}

fn any_obs() -> impl Strategy<Value = Obs> {
    (0usize..EVENT_NAMES.len(), 0u64..50_000, 0u32..4_000).prop_map(|(n, t, q)| Obs {
        name: EVENT_NAMES[n],
        t_us: t,
        value: f64::from(q) * 0.25,
    })
}

fn build() -> StreamAggregator {
    let mut agg = StreamAggregator::new();
    for name in EVENT_NAMES {
        agg = agg
            .window(WindowSpec::new(name, "v", 8_000))
            .window(WindowSpec::new(name, "v", 32_000))
            .ewma(EwmaSpec::new(name, "v", 4_000));
    }
    agg
}

fn feed(agg: &StreamAggregator, stream: &[Obs]) {
    for o in stream {
        agg.emit(o.name, &[("t_us", o.t_us.into()), ("v", o.value.into())]);
    }
}

/// Full bit-level fingerprint of the aggregator's queryable state.
fn fingerprint(agg: &StreamAggregator) -> Vec<(u64, u64, u64, u64, u64)> {
    let mut out = Vec::new();
    for name in EVENT_NAMES {
        for nth in 0..2 {
            let s = agg.window_stats_at(name, "v", nth).unwrap();
            out.push((
                s.count,
                s.sum.to_bits(),
                s.min.to_bits(),
                s.max.to_bits(),
                agg.watermark_us(),
            ));
        }
        out.push((
            agg.count(name),
            agg.ewma_value(name, "v").unwrap().to_bits(),
            agg.late_dropped(),
            0,
            0,
        ));
    }
    out
}

/// Deterministic Fisher–Yates driven by splitmix64 — proptest picks the
/// seed, the shuffle itself is reproducible.
fn shuffle(stream: &mut [Obs], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..stream.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        stream.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn replaying_the_same_stream_is_bit_deterministic(
        stream in prop::collection::vec(any_obs(), 0..64),
    ) {
        let (a, b) = (build(), build());
        feed(&a, &stream);
        feed(&b, &stream);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn window_contents_are_stable_under_reordering(
        stream in prop::collection::vec(any_obs(), 0..64),
        seed in 0u64..u64::MAX,
    ) {
        let a = build();
        feed(&a, &stream);

        let mut reordered = stream.clone();
        shuffle(&mut reordered, seed);
        let b = build();
        feed(&b, &reordered);

        // Windows evaluate at the final watermark, which depends only
        // on the set of observations — whether a stale observation was
        // dropped on arrival or evicted later, the surviving window
        // content is identical. (EWMAs are order-sensitive by design
        // and deliberately excluded here.)
        prop_assert_eq!(a.watermark_us(), b.watermark_us());
        for name in EVENT_NAMES {
            prop_assert_eq!(a.count(name), b.count(name));
            for nth in 0..2 {
                let sa = a.window_stats_at(name, "v", nth).unwrap();
                let sb = b.window_stats_at(name, "v", nth).unwrap();
                prop_assert_eq!(sa.count, sb.count, "{} window {}", name, nth);
                prop_assert_eq!(sa.sum.to_bits(), sb.sum.to_bits());
                prop_assert_eq!(sa.min.to_bits(), sb.min.to_bits());
                prop_assert_eq!(sa.max.to_bits(), sb.max.to_bits());
            }
        }
    }
}
