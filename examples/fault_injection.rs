//! Crash a user mid-run and watch the ring repair itself.
//!
//! The distributed NASH runtime detects a dead token holder via the
//! coordinator's round timeout, zeroes the failed user's load from the
//! board, splices the ring around it, regenerates the token under a new
//! epoch, and lets the survivors re-converge on the residual capacity.
//! A deterministic `FaultPlan` makes the whole scenario reproducible.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use nash_lb::distributed::fault::FaultPlan;
use nash_lb::distributed::runtime::DistributedNash;
use nash_lb::game::equilibrium::epsilon_nash_gap;
use nash_lb::game::model::SystemModel;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table-1 system at 60% utilization: 16 heterogeneous
    // computers, 10 users.
    let model = SystemModel::table1_system(0.6)?;
    println!(
        "spawning {} user threads over {} computers (token ring)…",
        model.num_users(),
        model.num_computers()
    );

    // User 3 will panic while holding the token in round 5; user 7 will
    // silently drop the token in round 9. Both failures are repaired.
    let plan = FaultPlan::new().panic_at(3, 5).drop_token_at(7, 9);
    println!("fault plan: user 3 panics at round 5, user 7 drops the token at round 9\n");

    let started = Instant::now();
    let outcome = DistributedNash::new()
        .tolerance(1e-4)
        .fault_plan(plan)
        .round_timeout(Duration::from_millis(250))
        .run_deadline(Duration::from_secs(30))
        .run(&model)?;
    let elapsed = started.elapsed();

    println!("run returned in {elapsed:.2?} (no hang)");
    println!(
        "rounds: {}, best replies: {}, converged: {}",
        outcome.rounds(),
        outcome.total_updates(),
        outcome.converged()
    );
    println!("failed users:  {:?}", outcome.failed_users());
    println!("survivors:     {:?}", outcome.survivors());

    // The survivors' profile is an eps-Nash equilibrium of the *reduced*
    // system (the same computers, minus the failed users' demand).
    let surviving_rates: Vec<f64> = outcome
        .survivors()
        .iter()
        .map(|&j| model.user_rate(j))
        .collect();
    let reduced = SystemModel::new(model.computer_rates().to_vec(), surviving_rates)?;
    let gap = epsilon_nash_gap(&reduced, outcome.profile())?;
    println!("reduced-system Nash gap: {gap:.2e}");

    println!("\nper-survivor expected response times at the repaired equilibrium:");
    for (&j, d) in outcome.survivors().iter().zip(outcome.user_times()) {
        println!("  user {j}: {d:.4} s");
    }
    Ok(())
}
