//! The game on modern hardware: computers as multicore pools (M/M/c).
//! There is no closed-form best reply against Erlang-C latencies, so the
//! numeric generic-latency solver drives the same greedy best-reply
//! dynamics — and a multi-server discrete-event simulation checks the
//! result.
//!
//! ```text
//! cargo run --release --example multicore_pools
//! ```

use nash_lb::game::latency::Latency;
use nash_lb::game::multicore::PoolSystem;
use nash_lb::sim::pools::run_pool_replication;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table-1 capacity (510 jobs/s), two ways:
    let users: Vec<f64> = nash_lb::game::model::paper_user_fractions()
        .iter()
        .map(|q| q * 0.6 * 510.0)
        .collect();

    let architectures = vec![
        (
            "16 single-core computers (the paper's model)",
            PoolSystem::new(
                nash_lb::game::model::SystemModel::table1_rates()
                    .iter()
                    .map(|&mu| (mu, 1))
                    .collect(),
                users.clone(),
            )?,
        ),
        (
            "4 multicore pools (6x10, 5x20, 3x50, 2x100)",
            PoolSystem::new(
                vec![(10.0, 6), (20.0, 5), (50.0, 3), (100.0, 2)],
                users.clone(),
            )?,
        ),
        (
            "1 big 51-core pool (10 jobs/s per core)",
            PoolSystem::new(vec![(10.0, 51)], users)?,
        ),
    ];

    println!(
        "{:<46} {:>8} {:>10} {:>12} {:>10}",
        "architecture", "sweeps", "NASH D (s)", "sim D (s)", "fairness"
    );
    for (label, sys) in architectures {
        let nash = sys.nash(1e-5, 500, 1200)?;
        let d = sys.overall_time(&nash.flows);
        let sim = run_pool_replication(&sys, &nash.flows, 200_000, 0.1, 7)?;
        let fairness = nash_lb::stats::jain_index(&nash.user_times).unwrap_or(f64::NAN);
        println!(
            "{label:<46} {:>8} {:>10.4} {:>12.4} {:>10.4}",
            nash.sweeps, d, sim.system_mean, fairness
        );
        // Show how loaded each pool ends up.
        let totals = sys.pool_totals(&nash.flows);
        let util: Vec<String> = totals
            .iter()
            .zip(sys.pools())
            .map(|(t, p)| format!("{:.0}%", 100.0 * t / p.capacity()))
            .collect();
        println!("{:<46} pool utilizations: [{}]", "", util.join(", "));
    }
    println!(
        "\nsame capacity, very different equilibria: consolidating each speed\n\
         class behind a shared queue (resource pooling) nearly halves the\n\
         paper's response time — but the 51-slow-core pool shows the limit:\n\
         with almost no queueing left, the 0.1 s per-core service time itself\n\
         becomes the floor. Pooling fights queueing variance; it cannot buy\n\
         single-job speed."
    );
    Ok(())
}
