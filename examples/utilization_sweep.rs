//! Sweep the system load on a custom cluster and print the Figure-4-style
//! comparison, including each scheme's price of anarchy.
//!
//! ```text
//! cargo run --release --example utilization_sweep [rho_percent ...]
//! ```

use nash_lb::game::equilibrium::price_of_anarchy;
use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::SystemModel;
use nash_lb::game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, NashScheme,
    ProportionalScheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom cluster: 4 big nodes, 8 mid nodes, 8 small nodes, shared
    // by 6 users with unequal demands.
    let mut rates = vec![80.0; 4];
    rates.extend(vec![30.0; 8]);
    rates.extend(vec![10.0; 8]);
    let fractions = [0.3, 0.25, 0.15, 0.12, 0.1, 0.08];

    let sweep: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .map(|a| a.parse::<f64>().map(|p| p / 100.0))
            .collect::<Result<_, _>>()?;
        if args.is_empty() {
            vec![0.2, 0.4, 0.6, 0.8, 0.9]
        } else {
            args
        }
    };

    println!(
        "cluster: {} computers, capacity {:.0} jobs/s, 6 users\n",
        rates.len(),
        rates.iter().sum::<f64>()
    );
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>11} {:>10} {:>10}",
        "util%", "NASH (s)", "GOS (s)", "IOS (s)", "PS (s)", "PoA(NASH)", "PoA(PS)"
    );
    for &rho in &sweep {
        let model = SystemModel::with_utilization(rates.clone(), &fractions, rho)?;
        let nash = NashScheme::default().compute(&model)?;
        let gos = GlobalOptimalScheme::default().compute(&model)?;
        let ios = IndividualOptimalScheme.compute(&model)?;
        let ps = ProportionalScheme.compute(&model)?;
        let d = |p| evaluate_profile(&model, p).map(|m| m.overall_time);
        println!(
            "{:>6.0} {:>11.4} {:>11.4} {:>11.4} {:>11.4} {:>10.4} {:>10.4}",
            rho * 100.0,
            d(&nash)?,
            d(&gos)?,
            d(&ios)?,
            d(&ps)?,
            price_of_anarchy(&model, &nash, &gos)?,
            price_of_anarchy(&model, &ps, &gos)?,
        );
    }
    println!("\nPoA = scheme's mean response time relative to the social optimum (GOS).");
    Ok(())
}
