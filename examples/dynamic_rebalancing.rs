//! Dynamic load balancing — the paper's future-work scenario. The system
//! parameters change over a day (demand waves, a computer going down for
//! maintenance, users joining), and the balancer re-equilibrates after
//! every change, warm-starting from the previous Nash equilibrium.
//!
//! ```text
//! cargo run --release --example dynamic_rebalancing
//! ```

use nash_lb::game::dynamics::{DynamicBalancer, Restart};
use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::{paper_user_fractions, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut balancer = DynamicBalancer::new(SystemModel::table1_system(0.4)?, 1e-5)?;
    println!(
        "initial equilibrium at 40% load: {} sweeps\n",
        balancer.history()[0].iterations
    );
    println!(
        "{:<44} {:>6} {:>6} {:>10} {:>9}",
        "event", "warm", "cold", "mean D (s)", "fairness"
    );

    let events: Vec<(&str, SystemModel)> = vec![
        (
            "morning ramp-up (load 40% -> 65%)",
            SystemModel::table1_system(0.65)?,
        ),
        ("lunch dip (65% -> 55%)", SystemModel::table1_system(0.55)?),
        ("an 11th user joins (+8% demand)", {
            let mut fr = paper_user_fractions();
            fr.push(0.08);
            SystemModel::with_utilization(SystemModel::table1_rates(), &fr, 0.6)?
        }),
        ("one fast computer down for maintenance", {
            let mut rates = SystemModel::table1_rates();
            rates.pop(); // drop one 100 jobs/s machine
            let mut fr = paper_user_fractions();
            fr.push(0.08);
            SystemModel::with_utilization(rates, &fr, 0.6)?
        }),
        ("evening peak (60% -> 80%)", {
            let mut rates = SystemModel::table1_rates();
            rates.pop();
            let mut fr = paper_user_fractions();
            fr.push(0.08);
            SystemModel::with_utilization(rates, &fr, 0.8)?
        }),
    ];

    for (label, model) in events {
        // Measure the cold restart on a throwaway copy for comparison.
        let mut cold_probe = DynamicBalancer::new(balancer.model().clone(), 1e-5)?;
        let cold = cold_probe.update(model.clone(), Restart::Cold)?;
        let warm = balancer.update(model, Restart::Warm)?;
        let metrics = evaluate_profile(balancer.model(), balancer.equilibrium())?;
        println!(
            "{label:<44} {:>6} {:>6} {:>10.4} {:>9.4}",
            warm.iterations, cold.iterations, metrics.overall_time, metrics.fairness
        );
    }

    let warm_total: u32 = balancer
        .history()
        .iter()
        .skip(1)
        .map(|r| r.iterations)
        .sum();
    println!(
        "\nwarm restarts used {warm_total} sweeps across {} events. The win is\n\
         largest for small drifts (see `experiments ext-dynamics`, ~2x) and\n\
         fades for big reconfigurations, where the old equilibrium is no\n\
         longer close — exactly the behaviour convergence theory predicts.",
        balancer.history().len() - 1
    );
    Ok(())
}
