//! Static game-theoretic profiles vs dynamic state-aware dispatch — what
//! is per-arrival queue information worth?
//!
//! ```text
//! cargo run --release --example dynamic_dispatch
//! ```

use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::nash_equilibrium;
use nash_lb::sim::policies::{run_policy_replication, DispatchPolicy};
use nash_lb::sim::scenario::SimulationConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimulationConfig {
        target_jobs: 300_000,
        ..SimulationConfig::paper()
    };

    for (label, model) in [
        (
            "Table-1 system, rho = 60%",
            SystemModel::table1_system(0.6)?,
        ),
        (
            "skewness 20 (2 fast + 14 slow), rho = 60%",
            SystemModel::skewed_system(20.0, 0.6)?,
        ),
    ] {
        let nash = nash_equilibrium(&model)?;
        println!("{label}");
        println!("{:<44} {:>12}", "policy", "mean D (s)");
        let policies = vec![
            (
                "static Nash profile (the paper)",
                DispatchPolicy::Static(nash.profile().clone()),
            ),
            (
                "weighted round robin over Nash flows",
                DispatchPolicy::WeightedRoundRobin(nash.profile().clone()),
            ),
            (
                "power of 2 choices (rate-weighted)",
                DispatchPolicy::PowerOfD(2),
            ),
            (
                "join shortest queue (speed-blind)",
                DispatchPolicy::JoinShortestQueue,
            ),
            (
                "shortest expected delay",
                DispatchPolicy::ShortestExpectedDelay,
            ),
        ];
        for (name, policy) in policies {
            let r = run_policy_replication(&model, &policy, cfg, 2002)?;
            println!("{name:<44} {:>12.4}", r.system_mean);
        }
        println!();
    }
    println!(
        "queue state at dispatch time is worth 2-5x over the best static rule —\n\
         but note JSQ on the skewed system: queue length without speed\n\
         information misroutes to slow machines and loses even to the static\n\
         Nash profile. The game-theoretic structure still matters when the\n\
         online signal is imperfect."
    );
    Ok(())
}
