//! When does game-theoretic load balancing matter? Sweep the speed
//! skewness of the computer pool (the paper's §4.2.3) and watch the gap
//! between the selfish schemes and the social optimum.
//!
//! ```text
//! cargo run --release --example heterogeneity
//! ```

use nash_lb::experiments::fig6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = fig6::run(None)?;
    println!("2 fast + 14 slow computers, 10 users, 60% utilization\n");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "skew", "NASH (s)", "GOS (s)", "IOS (s)", "PS (s)", "NASH/GOS", "NASH fair."
    );
    for p in &points {
        let nash = p.scheme("NASH");
        let gos = p.scheme("GOS");
        println!(
            "{:>5.0} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.4} {:>12.4}",
            p.skew,
            nash.overall_time,
            gos.overall_time,
            p.scheme("IOS").overall_time,
            p.scheme("PS").overall_time,
            nash.overall_time / gos.overall_time,
            nash.fairness,
        );
    }
    println!(
        "\ntakeaway: as heterogeneity grows, the Nash equilibrium closes in on the\n\
         social optimum while remaining user-optimal and decentralized — the\n\
         proportional heuristic keeps overloading the slow machines."
    );
    Ok(())
}
