//! Crash a server mid-run, shed load, recover, re-admit.
//!
//! The coordinator drives capacity churn through the same `FaultPlan`
//! machinery the user-failure demo uses: a computer crashes while the
//! ring is converging, the residual demand exceeds the residual capacity,
//! and the overload policy sheds just enough load (with headroom) to keep
//! the survivors stable. When the computer comes back the shed demand is
//! re-admitted and the ring re-converges to the nominal equilibrium. The
//! whole shed trajectory is recorded and — given the same plan and
//! schedule — replays byte-identically.
//!
//! ```text
//! cargo run --release --example server_churn
//! ```

use nash_lb::distributed::fault::FaultPlan;
use nash_lb::distributed::runtime::DistributedNash;
use nash_lb::game::model::SystemModel;
use nash_lb::game::overload::OverloadPolicy;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three heterogeneous computers, two users. Nominal demand 38 jobs/s
    // against 65 jobs/s of capacity — comfortable, until the big machine
    // goes away.
    let model = SystemModel::new(vec![30.0, 20.0, 15.0], vec![20.0, 18.0])?;
    println!(
        "capacity {:?} = {} jobs/s, demand {:?} = {} jobs/s",
        model.computer_rates(),
        model.total_capacity(),
        model.user_rates(),
        model.total_arrival_rate()
    );

    // Computer 0 (30 jobs/s) crashes after round 1: 38 > 35 is
    // infeasible. It recovers after round 4.
    let plan = FaultPlan::new()
        .crash_computer_at(1, 0)
        .recover_computer_at(4, 0);
    println!("plan: computer 0 crashes after round 1, recovers after round 4\n");

    let outcome = DistributedNash::new()
        .tolerance(1e-6)
        .fault_plan(plan)
        .overload_policy(OverloadPolicy::ShedProportional { headroom: 0.9 })
        .round_timeout(Duration::from_millis(250))
        .run_deadline(Duration::from_secs(30))
        .run(&model)?;

    println!("shed trajectory (one record per capacity change):");
    for rec in outcome.shed_trajectory() {
        println!(
            "  round {:>2} -> epoch {}: capacity {:?}, admitted {:?}, shed {:?}",
            rec.round,
            rec.epoch,
            rec.capacity,
            rec.admitted
                .iter()
                .map(|x| format!("{x:.2}"))
                .collect::<Vec<_>>(),
            rec.shed
                .iter()
                .map(|x| format!("{x:.2}"))
                .collect::<Vec<_>>(),
        );
    }

    println!(
        "\nfinal state: capacity {:?}, admitted {:?}, shed {:?}",
        outcome.final_capacity(),
        outcome.admitted_rates(),
        outcome.shed_rates()
    );
    println!(
        "degraded computers at the end: {:?} (recovery re-admitted everything)",
        outcome.degraded_computers()
    );
    println!(
        "rounds: {}, converged: {}, per-user response times {:?}",
        outcome.rounds(),
        outcome.converged(),
        outcome
            .user_times()
            .iter()
            .map(|d| format!("{d:.4}"))
            .collect::<Vec<_>>()
    );
    Ok(())
}
