//! The NASH algorithm as a real distributed system: one thread per user,
//! a token ring over channels, and users that observe each other only
//! through the computers' load — exactly the deployment story of the
//! paper's §3.
//!
//! ```text
//! cargo run --release --example distributed_nash
//! ```

use nash_lb::distributed::runtime::{DistributedNash, RingInit};
use nash_lb::distributed::ObservationModel;
use nash_lb::game::equilibrium::epsilon_nash_gap;
use nash_lb::game::model::SystemModel;
use nash_lb::game::StoppingRule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table-1 system at 60% utilization: 16 heterogeneous
    // computers, 10 users.
    let model = SystemModel::table1_system(0.6)?;
    println!(
        "spawning {} user threads over {} computers (token ring)…\n",
        model.num_users(),
        model.num_computers()
    );

    for (label, init) in [
        ("NASH_0", RingInit::Zero),
        ("NASH_P", RingInit::Proportional),
    ] {
        let outcome = DistributedNash::new()
            .init(init)
            .tolerance(1e-4)
            .run(&model)?;
        let gap = epsilon_nash_gap(&model, outcome.profile())?;
        println!(
            "{label}: {} rounds, {} best replies computed, Nash gap {:.2e}",
            outcome.rounds(),
            outcome.total_updates(),
            gap
        );
    }

    // With noisy run-queue observation (the paper's "statistical
    // estimation" remark), the ring still settles near the equilibrium.
    // A regret certificate computed from noisy observations proves
    // nothing (and noise keeps some user forever convinced it can
    // improve, so the quiescent accepting round never happens) — the
    // norm rule is the right stopping criterion here.
    let noisy = DistributedNash::new()
        .observation(ObservationModel::Noisy {
            rel_std: 0.03,
            seed: 2002,
        })
        .stopping_rule(StoppingRule::AbsoluteNorm)
        .tolerance(5e-3)
        .max_rounds(2000)
        .run(&model)?;
    let gap = epsilon_nash_gap(&model, noisy.profile())?;
    println!(
        "noisy observation (3% error): {} rounds, Nash gap {:.2e}",
        noisy.rounds(),
        gap
    );
    println!("\nper-user expected response times at equilibrium:");
    for (j, d) in noisy.user_times().iter().enumerate() {
        println!("  user {j}: {d:.4} s");
    }
    Ok(())
}
