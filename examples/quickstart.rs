//! Quickstart: compute the Nash equilibrium for a small heterogeneous
//! system and compare it with the classical schemes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::{Initialization, NashSolver};
use nash_lb::game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, ProportionalScheme,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three computers (a slow box, a mid box, a fast box) shared by two
    // users: an interactive user (30 jobs/s) and a batch user (60 jobs/s).
    let model = SystemModel::builder()
        .computer_rates(vec![20.0, 40.0, 100.0])
        .user_rates(vec![30.0, 60.0])
        .build()?;

    println!(
        "system: {} computers (capacity {:.0} jobs/s), {} users, utilization {:.0}%\n",
        model.num_computers(),
        model.total_capacity(),
        model.num_users(),
        model.system_utilization() * 100.0
    );

    // The paper's contribution: each user independently plays its best
    // reply until nobody can improve — the Nash equilibrium.
    let outcome = NashSolver::new(Initialization::Proportional)
        .tolerance(1e-6)
        .solve(&model)?;
    println!(
        "NASH converged in {} round-robin sweeps (final norm {:.2e})",
        outcome.iterations(),
        outcome.trace().last().unwrap()
    );
    for (j, s) in outcome.profile().strategies().iter().enumerate() {
        let pretty: Vec<String> = s.fractions().iter().map(|f| format!("{f:.3}")).collect();
        println!("  user {j} strategy: [{}]", pretty.join(", "));
    }

    // Compare against the baselines the paper evaluates.
    println!(
        "\n{:<6} {:>12} {:>10} {:>22}",
        "scheme", "mean D (s)", "fairness", "per-user D (s)"
    );
    let schemes: Vec<(&str, Box<dyn LoadBalancingScheme>)> = vec![
        ("GOS", Box::new(GlobalOptimalScheme::default())),
        ("IOS", Box::new(IndividualOptimalScheme)),
        ("PS", Box::new(ProportionalScheme)),
    ];
    let nash_metrics = evaluate_profile(&model, outcome.profile())?;
    print_row("NASH", &nash_metrics);
    for (name, scheme) in schemes {
        let profile = scheme.compute(&model)?;
        let metrics = evaluate_profile(&model, &profile)?;
        print_row(name, &metrics);
    }
    Ok(())
}

fn print_row(name: &str, m: &nash_lb::game::metrics::ProfileMetrics) {
    let users: Vec<String> = m.user_times.iter().map(|d| format!("{d:.4}")).collect();
    println!(
        "{name:<6} {:>12.4} {:>10.4} {:>22}",
        m.overall_time,
        m.fairness,
        users.join("  ")
    );
}
