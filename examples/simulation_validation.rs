//! Validate the game-theoretic predictions against the discrete-event
//! simulator: compute the Nash profile analytically, then actually run
//! the distributed system (Poisson users, FCFS M/M/1 computers) and
//! compare measured response times with the formulas.
//!
//! ```text
//! cargo run --release --example simulation_validation
//! ```

use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::nash_equilibrium;
use nash_lb::sim::harness::simulate_profile;
use nash_lb::sim::scenario::SimulationConfig;
use nash_lb::sim::validate::compare;
use nash_lb::stats::ReplicationPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SystemModel::table1_system(0.6)?;
    let nash = nash_equilibrium(&model)?;
    let analytic = evaluate_profile(&model, nash.profile())?;

    // The paper's methodology: five replications, different streams,
    // std error under 5% at 95% confidence.
    let plan = ReplicationPlan::paper();
    let config = SimulationConfig {
        target_jobs: 400_000,
        ..SimulationConfig::paper()
    };
    println!(
        "simulating {} jobs x {} replications (this exercises the DES engine)…\n",
        config.target_jobs, plan.replications
    );
    let simulated = simulate_profile(&model, nash.profile(), &plan, config)?;
    let report = compare(&model, nash.profile(), &simulated)?;

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>8}",
        "user", "analytic D", "simulated D", "95% CI ±", "rel err"
    );
    for j in 0..model.num_users() {
        let s = &simulated.user_summaries[j];
        println!(
            "{:<6} {:>12.5} {:>12.5} {:>12.5} {:>7.2}%",
            j,
            analytic.user_times[j],
            s.mean,
            s.half_width,
            report.user_relative_errors[j] * 100.0
        );
    }
    println!(
        "\nsystem mean: analytic {:.5} s, simulated {:.5} s (rel err {:.2}%)",
        analytic.overall_time,
        simulated.system_summary.mean,
        report.system_relative_error * 100.0
    );
    println!(
        "fairness: analytic {:.4}, simulated {:.4}",
        analytic.fairness, simulated.fairness
    );
    println!(
        "precision gate (rel. std error < 5%): {} (worst {:.2}%)",
        if simulated.precise { "PASS" } else { "FAIL" },
        simulated.worst_relative_error * 100.0
    );
    if !report.within(0.10) {
        return Err(format!(
            "simulation deviates from theory by more than 10% (max {:.2}%)",
            report.max_user_relative_error * 100.0
        )
        .into());
    }
    println!(
        "simulated p95 response time: {:.4} s ({:.1}x the mean — the tail the mean hides)",
        simulated.system_p95,
        simulated.system_p95 / simulated.system_summary.mean
    );

    // One extra replication streamed into a histogram: the sojourn-time
    // distribution at a glance.
    use nash_lb::sim::scenario::run_replication_with_sink;
    use nash_lb::stats::histogram::Histogram;
    let mut hist =
        Histogram::new(0.0, 4.0 * analytic.overall_time, 16).expect("valid histogram bounds");
    run_replication_with_sink(&model, nash.profile(), config, 99, |_, resp| {
        hist.record(resp);
    })?;
    println!("\nsojourn-time distribution (one replication):");
    print!("{}", hist.ascii(48));
    println!(
        "(above range: {} of {} jobs)",
        hist.overflow(),
        hist.count()
    );
    println!("\nsimulation confirms the M/M/1 game model ✔");
    Ok(())
}
