//! Cross-validation between independent implementations of the same
//! mathematics: closed forms vs iterative solvers, sequential vs threaded
//! runtimes, formulas vs discrete-event sample paths.

use nash_lb::distributed::runtime::{DistributedNash, RingInit};
use nash_lb::game::best_reply::{split_cost, water_fill_flows};
use nash_lb::game::gradient::exponentiated_gradient_flows;
use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::{nash_equilibrium, Initialization, NashSolver};
use nash_lb::game::schemes::{wardrop_flows, wardrop_iterative};
use nash_lb::game::StoppingRule;
use nash_lb::sim::harness::simulate_profile;
use nash_lb::sim::scenario::SimulationConfig;
use nash_lb::sim::validate::compare;
use nash_lb::stats::ReplicationPlan;

/// Deterministic pseudo-random instance generator (no external RNG in
/// this test; reproducible by construction).
fn lcg_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.max(1);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn water_filling_agrees_with_gradient_descent_on_random_instances() {
    let mut rnd = lcg_stream(0xC0FFEE);
    for case in 0..25 {
        let n = 1 + (rnd() * 7.0) as usize;
        let rates: Vec<f64> = (0..n).map(|_| 1.0 + rnd() * 99.0).collect();
        let capacity: f64 = rates.iter().sum();
        let demand = capacity * (0.05 + 0.9 * rnd());
        let exact = water_fill_flows(&rates, demand).unwrap();
        let approx = exponentiated_gradient_flows(&rates, demand, 4000).unwrap();
        let c_exact = split_cost(&rates, &exact);
        let c_approx = split_cost(&rates, &approx);
        assert!(
            (c_approx - c_exact).abs() <= 1e-4 * c_exact.max(1e-9),
            "case {case}: exact {c_exact} vs gradient {c_approx} (rates {rates:?}, demand {demand})"
        );
    }
}

#[test]
fn wardrop_closed_form_agrees_with_bisection_on_random_instances() {
    let mut rnd = lcg_stream(0xBEEF);
    for case in 0..25 {
        let n = 1 + (rnd() * 9.0) as usize;
        let mu: Vec<f64> = (0..n).map(|_| 1.0 + rnd() * 49.0).collect();
        let capacity: f64 = mu.iter().sum();
        let phi = capacity * (0.05 + 0.9 * rnd());
        let exact = wardrop_flows(&mu, phi).unwrap();
        let iter = wardrop_iterative(&mu, phi, 1e-12, 500).unwrap();
        for (i, (a, b)) in exact.iter().zip(&iter).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * phi.max(1.0),
                "case {case} computer {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn threaded_ring_replays_the_sequential_dynamics_exactly() {
    for rho in [0.3, 0.6, 0.8] {
        let model = SystemModel::table1_system(rho).unwrap();
        for (init_ring, init_seq) in [
            (RingInit::Zero, Initialization::Zero),
            (RingInit::Proportional, Initialization::Proportional),
        ] {
            // Lockstep replay holds under the paper's norm rule; the
            // certified default costs the ring one extra confirming
            // round (covered by the distributed crate's own tests).
            let ring = DistributedNash::new()
                .init(init_ring)
                .stopping_rule(StoppingRule::AbsoluteNorm)
                .tolerance(1e-6)
                .run(&model)
                .unwrap();
            let seq = NashSolver::new(init_seq)
                .stopping_rule(StoppingRule::AbsoluteNorm)
                .tolerance(1e-6)
                .solve(&model)
                .unwrap();
            assert_eq!(ring.rounds(), seq.iterations(), "rho {rho}");
            let dist = ring.profile().max_l1_distance(seq.profile()).unwrap();
            assert!(dist < 1e-6, "rho {rho}: profiles differ by {dist}");
            // Norm traces agree round by round.
            for (a, b) in ring.trace().values().iter().zip(seq.trace().values()) {
                assert!((a - b).abs() < 1e-9, "trace mismatch at rho {rho}");
            }
        }
    }
}

#[test]
fn simulated_nash_matches_analytic_predictions() {
    let model = SystemModel::new(vec![10.0, 20.0, 50.0], vec![15.0, 20.0, 13.0]).unwrap();
    let nash = nash_equilibrium(&model).unwrap();
    let plan = ReplicationPlan {
        replications: 3,
        ..ReplicationPlan::paper()
    };
    let sim = simulate_profile(&model, nash.profile(), &plan, SimulationConfig::quick()).unwrap();
    let report = compare(&model, nash.profile(), &sim).unwrap();
    assert!(
        report.within(0.10),
        "max user rel err {:.3}, system rel err {:.3}",
        report.max_user_relative_error,
        report.system_relative_error
    );
}

#[test]
fn analytic_system_mean_is_the_flow_weighted_computer_mean() {
    // Two independent derivations of D(s): rate-weighted user times vs
    // flow-weighted computer times.
    let model = SystemModel::table1_system(0.7).unwrap();
    let nash = nash_equilibrium(&model).unwrap();
    let metrics = evaluate_profile(&model, nash.profile()).unwrap();
    let phi = model.total_arrival_rate();
    let by_computers: f64 = metrics
        .computer_flows
        .iter()
        .zip(model.computer_rates())
        .filter(|(&l, _)| l > 0.0)
        .map(|(&l, &mu)| l / (mu - l))
        .sum::<f64>()
        / phi;
    assert!(
        (by_computers - metrics.overall_time).abs() < 1e-9,
        "{by_computers} vs {}",
        metrics.overall_time
    );
}

#[test]
fn churn_simulation_matches_the_quasi_static_prediction() {
    // The acceptance scenario of the fault-tolerance extension: a server
    // crashes mid-run, the dispatcher re-equilibrates and sheds load per
    // the overload policy, the server recovers and the shed demand is
    // re-admitted. The measured mean response time of served jobs must
    // agree with the analytic quasi-static mixture (throughput-weighted
    // per-phase equilibrium response times) within the replications'
    // confidence interval.
    use nash_lb::des::breakdown::RetryBackoff;
    use nash_lb::game::overload::OverloadPolicy;
    use nash_lb::sim::churn::{run_churn_replication, ChurnPhase};

    let model = SystemModel::new(vec![10.0, 20.0, 30.0], vec![16.0, 12.0]).unwrap();
    let phases = vec![
        ChurnPhase {
            duration: 500.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
        ChurnPhase {
            duration: 500.0,
            capacity: vec![10.0, 20.0, 0.0],
        },
        ChurnPhase {
            duration: 500.0,
            capacity: vec![10.0, 20.0, 30.0],
        },
    ];
    let policy = OverloadPolicy::ShedProportional { headroom: 0.8 };
    let backoff = RetryBackoff::new(0.05, 2.0, 1.0, 5);

    let mut acc = nash_lb::stats::Welford::new();
    let mut predicted = 0.0;
    for seed in 0..5 {
        let r =
            run_churn_replication(&model, &phases, policy, backoff, 100.0, 1000 + seed).unwrap();
        acc.push(r.measured_mean);
        predicted = r.predicted_mean;
        // The degraded phase dominates the mixture from above: its
        // prediction must exceed the nominal phases'.
        assert!(
            r.phase_predictions[1] > r.phase_predictions[0],
            "degraded phase should be slower: {:?}",
            r.phase_predictions
        );
        // Recovery re-converges (warm start) to the nominal equilibrium
        // up to the balancer's tolerance, not bit-exactly.
        assert!((r.phase_predictions[0] - r.phase_predictions[2]).abs() < 1e-5);
    }
    let mean = acc.mean();
    let half_width = 2.78 * (acc.sample_variance() / 5.0).sqrt(); // t_{0.975,4}
    let tol = (3.0 * half_width).max(0.08 * predicted);
    assert!(
        (mean - predicted).abs() < tol,
        "measured {mean:.5} vs predicted {predicted:.5} (CI half-width {half_width:.5})"
    );
}
