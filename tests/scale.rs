//! Scale tests: the algorithms on systems far larger than the paper's
//! 16×10 configuration — the regime a downstream user of the library
//! actually cares about.

use nash_lb::game::best_reply::{satisfies_kkt, water_fill_flows};
use nash_lb::game::equilibrium::epsilon_nash_gap;
use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::{nash_equilibrium, Initialization, NashSolver};
use nash_lb::game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, ProportionalScheme,
};

/// A 256-computer heterogeneous bank cycling the Table-1 speed classes.
fn big_rates() -> Vec<f64> {
    const CLASSES: [f64; 4] = [10.0, 20.0, 50.0, 100.0];
    (0..256).map(|i| CLASSES[i % 4]).collect()
}

#[test]
fn water_filling_handles_thousands_of_computers() {
    let rates: Vec<f64> = (0..4096).map(|i| 1.0 + (i % 97) as f64).collect();
    let capacity: f64 = rates.iter().sum();
    let flows = water_fill_flows(&rates, 0.7 * capacity).unwrap();
    let total: f64 = flows.iter().sum();
    assert!((total - 0.7 * capacity).abs() < 1e-6 * capacity);
    assert!(satisfies_kkt(&rates, &flows, 1e-5));
}

#[test]
fn nash_converges_on_a_256_computer_64_user_system() {
    let model = SystemModel::with_equal_users(big_rates(), 64, 0.7).unwrap();
    let out = NashSolver::new(Initialization::Proportional)
        .tolerance(1e-4)
        .max_iterations(5000)
        .solve(&model)
        .unwrap();
    assert!(out.converged());
    out.profile().check_stability(&model).unwrap();
    let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
    let scale: f64 = out.user_times().iter().cloned().fold(0.0, f64::max);
    assert!(gap < 1e-3 * scale.max(1e-6), "gap {gap}");
}

#[test]
fn all_schemes_scale_and_keep_their_ordering() {
    let model = SystemModel::with_equal_users(big_rates(), 32, 0.6).unwrap();
    let d = |p: &nash_lb::game::strategy::StrategyProfile| {
        nash_lb::game::response::overall_response_time(&model, p).unwrap()
    };
    let nash = nash_equilibrium(&model).unwrap();
    let gos = GlobalOptimalScheme::default().compute(&model).unwrap();
    let ios = IndividualOptimalScheme.compute(&model).unwrap();
    let ps = ProportionalScheme.compute(&model).unwrap();
    let (d_nash, d_gos, d_ios, d_ps) = (d(nash.profile()), d(&gos), d(&ios), d(&ps));
    assert!(d_gos <= d_nash && d_nash <= d_ios + 1e-12 && d_ios <= d_ps + 1e-12);
}

#[test]
fn heavily_asymmetric_users_are_handled() {
    // One whale user plus many tiny ones.
    let mut fractions = vec![0.7];
    fractions.extend(vec![0.3 / 29.0; 29]);
    let model =
        SystemModel::with_utilization(SystemModel::table1_rates(), &fractions, 0.7).unwrap();
    let out = nash_equilibrium(&model).unwrap();
    let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
    assert!(gap < 1e-3, "gap {gap}");
    // The whale, forced onto slow machines, has the worst time.
    let times = out.user_times();
    let whale = times[0];
    for &t in &times[1..] {
        assert!(whale >= t - 1e-9, "whale {whale} vs minnow {t}");
    }
}

#[test]
fn near_saturation_still_converges() {
    let model = SystemModel::table1_system(0.985).unwrap();
    let out = NashSolver::new(Initialization::Proportional)
        .tolerance(1e-3)
        .max_iterations(20_000)
        .solve(&model)
        .unwrap();
    assert!(out.converged());
    out.profile().check_stability(&model).unwrap();
    // All computers must be in use this close to capacity.
    let flows = out.profile().computer_flows(&model).unwrap();
    assert!(flows.iter().all(|&f| f > 0.0));
}
