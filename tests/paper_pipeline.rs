//! End-to-end pipeline tests: every table/figure driver runs and exhibits
//! the paper's qualitative results (fast configurations; the full-scale
//! reproduction is `cargo run -p lb-experiments -- all`).

use nash_lb::experiments::{fig2, fig3, fig4, fig5, fig6, table1};

#[test]
fn table1_is_the_papers_configuration() {
    let classes = table1::classes();
    let total_computers: usize = classes.iter().map(|c| c.count).sum();
    let capacity: f64 = classes.iter().map(|c| c.rate * c.count as f64).sum();
    assert_eq!(total_computers, 16);
    assert_eq!(capacity, 510.0);
}

#[test]
fn fig2_traces_reach_epsilon() {
    let r = fig2::run_at(0.6, 1e-4).unwrap();
    assert!(*r.nash0.last().unwrap() <= 1e-4);
    assert!(*r.nashp.last().unwrap() <= 1e-4);
    assert!(r.iterations_nashp() < r.iterations_nash0());
}

#[test]
fn fig3_iterations_grow_with_users() {
    let points = fig3::run_sweep(&[4, 16, 32], 0.6, 1e-4).unwrap();
    assert!(points[0].nash0_iterations < points[2].nash0_iterations);
    for p in &points {
        assert!(p.nashp_iterations < p.nash0_iterations, "{} users", p.users);
    }
}

#[test]
fn fig4_reproduces_the_papers_ordering() {
    let points = fig4::run(None).unwrap();
    // Medium load (50%): paper reports NASH ~30% below PS, ~7% above GOS.
    let p50 = &points[4];
    let nash = p50.scheme("NASH").overall_time;
    let gos = p50.scheme("GOS").overall_time;
    let ps = p50.scheme("PS").overall_time;
    let vs_ps = (ps - nash) / ps;
    let vs_gos = (nash - gos) / gos;
    assert!(
        (0.15..0.45).contains(&vs_ps),
        "NASH should be ~30% below PS, got {:.1}%",
        vs_ps * 100.0
    );
    assert!(
        (0.0..0.15).contains(&vs_gos),
        "NASH should be within ~7% of GOS, got {:.1}%",
        vs_gos * 100.0
    );
}

#[test]
fn fig4_high_load_identity_ios_equals_ps() {
    // When the Wardrop equilibrium uses every computer, its job-averaged
    // response time equals PS's exactly: n / ((1-rho) * total_capacity).
    let points = fig4::run(None).unwrap();
    let p90 = points.last().unwrap();
    let expected = 16.0 / (0.1 * 510.0);
    assert!((p90.scheme("PS").overall_time - expected).abs() < 1e-9);
    assert!((p90.scheme("IOS").overall_time - expected).abs() < 1e-9);
}

#[test]
fn fig5_nash_is_user_preferred() {
    let r = fig5::run(None).unwrap();
    let nash = &r.scheme("NASH").user_times;
    for (j, (&n, &p)) in nash.iter().zip(&r.scheme("PS").user_times).enumerate() {
        assert!(n < p, "user {j} prefers PS?!");
    }
}

#[test]
fn fig6_high_skew_brings_nash_to_gos() {
    let points = fig6::run(None).unwrap();
    let last = points.last().unwrap();
    let ratio = last.scheme("NASH").overall_time / last.scheme("GOS").overall_time;
    assert!(ratio < 1.05, "NASH/GOS at skew 20 = {ratio}");
    let mid = &points[3]; // skew 6
    let ps_ratio = mid.scheme("PS").overall_time / mid.scheme("GOS").overall_time;
    assert!(
        ps_ratio > 1.2,
        "PS should lag badly at skew 6, ratio {ps_ratio}"
    );
}

#[test]
fn fig4_simulated_point_matches_analytic() {
    // One simulated sweep point at a CI-friendly budget: the simulated
    // system times must land near the analytic ones for every scheme.
    use nash_lb::experiments::fig4::SimOptions;
    use nash_lb::game::model::SystemModel;
    let model = SystemModel::table1_system(0.6).unwrap();
    let rows = fig4::evaluate_schemes(&model, Some(SimOptions::quick())).unwrap();
    for row in rows {
        let sim = row.simulated_time.unwrap();
        let rel = (sim - row.overall_time).abs() / row.overall_time;
        assert!(
            rel < 0.10,
            "{}: simulated {sim} vs analytic {} (rel {rel:.3})",
            row.scheme,
            row.overall_time
        );
        let sim_fair = row.simulated_fairness.unwrap();
        assert!(
            (sim_fair - row.fairness).abs() < 0.05,
            "{}: fairness {sim_fair} vs {}",
            row.scheme,
            row.fairness
        );
    }
}
