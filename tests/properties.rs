//! Property-based tests (proptest) on the core invariants of the game:
//! feasibility and optimality of best replies, equilibrium quality of the
//! NASH outcome, social optimality of GOS, and the fairness guarantees of
//! PS/IOS — over randomly drawn systems.

use nash_lb::game::best_reply::{satisfies_kkt, split_cost, water_fill_flows};
use nash_lb::game::equilibrium::epsilon_nash_gap;
use nash_lb::game::metrics::evaluate_profile;
use nash_lb::game::model::SystemModel;
use nash_lb::game::nash::{Initialization, NashSolver};
use nash_lb::game::response::overall_response_time;
use nash_lb::game::schemes::{
    GlobalOptimalScheme, IndividualOptimalScheme, LoadBalancingScheme, ProportionalScheme,
};
use proptest::prelude::*;

/// A random stable system: 1..=8 computers, 1..=6 users, utilization in
/// (5%, 90%).
fn arb_system() -> impl Strategy<Value = SystemModel> {
    (
        prop::collection::vec(1.0f64..100.0, 1..=8),
        prop::collection::vec(0.05f64..1.0, 1..=6),
        0.05f64..0.9,
    )
        .prop_map(|(rates, fractions, rho)| {
            SystemModel::with_utilization(rates, &fractions, rho)
                .expect("construction is valid for rho < 1")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn water_filling_is_feasible_and_kkt_optimal(
        rates in prop::collection::vec(0.5f64..200.0, 1..=10),
        frac in 0.01f64..0.99,
    ) {
        let capacity: f64 = rates.iter().sum();
        let demand = capacity * frac;
        let flows = water_fill_flows(&rates, demand).unwrap();
        let total: f64 = flows.iter().sum();
        prop_assert!((total - demand).abs() < 1e-6 * demand.max(1.0));
        for (x, a) in flows.iter().zip(&rates) {
            prop_assert!(*x >= 0.0 && x < a);
        }
        prop_assert!(satisfies_kkt(&rates, &flows, 1e-5));
    }

    #[test]
    fn water_filling_beats_random_feasible_splits(
        rates in prop::collection::vec(1.0f64..100.0, 2..=6),
        frac in 0.05f64..0.9,
        weights in prop::collection::vec(0.01f64..1.0, 6),
    ) {
        let capacity: f64 = rates.iter().sum();
        let demand = capacity * frac;
        let opt = water_fill_flows(&rates, demand).unwrap();
        // A random feasible competitor: flows proportional to random
        // weights times capacity, clamped into stability by mixing with
        // the proportional split.
        let wsum: f64 = weights[..rates.len()].iter().sum();
        let mix = 0.5;
        let competitor: Vec<f64> = rates
            .iter()
            .zip(&weights[..rates.len()])
            .map(|(&a, &w)| {
                mix * demand * w / wsum + (1.0 - mix) * demand * a / capacity
            })
            .collect();
        // Only compare when the competitor is stable.
        if competitor.iter().zip(&rates).all(|(x, a)| x < a) {
            prop_assert!(
                split_cost(&rates, &opt) <= split_cost(&rates, &competitor) + 1e-9
            );
        }
    }

    #[test]
    fn nash_outcome_is_feasible_epsilon_equilibrium(model in arb_system()) {
        let out = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-7)
            .max_iterations(5000)
            .solve(&model)
            .unwrap();
        out.profile().check_stability(&model).unwrap();
        let gap = epsilon_nash_gap(&model, out.profile()).unwrap();
        let scale: f64 = out.user_times().iter().cloned().fold(0.0, f64::max);
        prop_assert!(gap <= 1e-3 * scale.max(1e-3), "gap {gap} at scale {scale}");
    }

    #[test]
    fn gos_is_socially_optimal_among_all_schemes(model in arb_system()) {
        let gos = GlobalOptimalScheme::default().compute(&model).unwrap();
        let d_gos = overall_response_time(&model, &gos).unwrap();
        let nash = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-6)
            .max_iterations(5000)
            .solve(&model)
            .unwrap();
        let others = vec![
            nash.into_profile(),
            IndividualOptimalScheme.compute(&model).unwrap(),
            ProportionalScheme.compute(&model).unwrap(),
        ];
        for p in others {
            let d = overall_response_time(&model, &p).unwrap();
            prop_assert!(d_gos <= d + 1e-7 * d.abs().max(1.0), "GOS {d_gos} vs {d}");
        }
    }

    #[test]
    fn ps_and_ios_are_perfectly_fair_everywhere(model in arb_system()) {
        for scheme in [
            Box::new(ProportionalScheme) as Box<dyn LoadBalancingScheme>,
            Box::new(IndividualOptimalScheme),
        ] {
            let p = scheme.compute(&model).unwrap();
            let m = evaluate_profile(&model, &p).unwrap();
            prop_assert!((m.fairness - 1.0).abs() < 1e-9, "{}", scheme.name());
        }
    }

    #[test]
    fn nash_fairness_dominates_gos_fairness(model in arb_system()) {
        let nash = NashSolver::new(Initialization::Proportional)
            .tolerance(1e-7)
            .max_iterations(5000)
            .solve(&model)
            .unwrap();
        let m_nash = evaluate_profile(&model, nash.profile()).unwrap();
        let gos = GlobalOptimalScheme::default().compute(&model).unwrap();
        let m_gos = evaluate_profile(&model, &gos).unwrap();
        // Nash never does materially worse than sequential GOS on fairness.
        prop_assert!(m_nash.fairness >= m_gos.fairness - 1e-6);
    }

    #[test]
    fn profile_flows_conserve_total_arrival_rate(model in arb_system()) {
        for scheme in [
            Box::new(ProportionalScheme) as Box<dyn LoadBalancingScheme>,
            Box::new(IndividualOptimalScheme),
            Box::new(GlobalOptimalScheme::default()),
        ] {
            let p = scheme.compute(&model).unwrap();
            let flows = p.computer_flows(&model).unwrap();
            let total: f64 = flows.iter().sum();
            prop_assert!(
                (total - model.total_arrival_rate()).abs()
                    < 1e-6 * model.total_arrival_rate(),
                "{} conservation",
                scheme.name()
            );
        }
    }
}
