//! End-to-end runs of the analytic extension experiments through the
//! public `nash_lb::experiments` API (the simulation-heavy extensions are
//! covered by crate-level tests at reduced budgets).

use nash_lb::experiments::beyond;

#[test]
fn stackelberg_sweep_brackets_nash() {
    let (points, nash, gos) = beyond::stackelberg_sweep().unwrap();
    assert_eq!(points.len(), 11);
    assert!(points[0].overall_time > nash, "alpha=0 should trail NASH");
    assert!((points[10].overall_time - gos).abs() < 1e-9);
    // The rendered table has a row per alpha.
    assert_eq!(beyond::render_stackelberg(&points, nash, gos).len(), 11);
    // Find the smallest alpha that matches NASH: it should take a
    // nontrivial centrally-controlled share.
    let crossover = points
        .iter()
        .find(|p| p.overall_time <= nash)
        .expect("alpha=1 matches GOS <= NASH");
    assert!(
        crossover.alpha >= 0.1,
        "a leader needs real traffic share, got alpha {}",
        crossover.alpha
    );
}

#[test]
fn warm_start_report_is_complete() {
    let steps = beyond::warm_start_dynamics().unwrap();
    assert_eq!(steps.len(), 7);
    let warm: u32 = steps.iter().map(|s| s.warm_iterations).sum();
    let cold: u32 = steps.iter().map(|s| s.cold_iterations).sum();
    assert!(warm < cold);
    assert_eq!(beyond::render_dynamics(&steps).len(), 7);
}

#[test]
fn poa_sweep_is_rendered_and_bounded() {
    let points = beyond::poa_vs_utilization().unwrap();
    assert_eq!(points.len(), 9);
    for p in &points {
        assert!(p.poa_nash >= 1.0 - 1e-9 && p.poa_nash < 1.2);
        assert!(p.poa_wardrop >= p.poa_nash - 1e-9);
    }
    assert_eq!(beyond::render_poa(&points).len(), 9);
}

#[test]
fn observation_noise_is_monotonically_harmful_at_the_extremes() {
    let points = beyond::observation_noise().unwrap();
    assert_eq!(points.len(), 5);
    let exact = points[0].relative_gap;
    let worst = points.last().unwrap().relative_gap;
    assert!(exact < 1e-2);
    assert!(worst > exact, "noise should enlarge the Nash gap");
    assert_eq!(beyond::render_noise(&points).len(), 5);
}
